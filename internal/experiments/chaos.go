package experiments

import (
	"deepbat/internal/fault"
	"deepbat/internal/qsim"
)

// Chaos stress-tests the serving path under the deterministic fault model
// (internal/fault): the first Azure paper-hour is replayed through the
// simulator's failure mirror at increasing error rates, with and without a
// retry budget, reporting how much latency, cost, and loss each level of
// chaos inflicts. Fault outcomes are a pure function of (seed, invocation
// index), so the tables reproduce byte for byte.
func Chaos(l *Lab) (*Report, error) {
	r := &Report{ID: "chaos", Title: "fault injection: resilience of the serving path under chaos"}

	hour := l.Trace("azure").FirstHours(1)
	cfg := l.replayOptions().InitialConfig
	retry := fault.Retry{Max: 2, BaseS: 0.05, CapS: 0.4}

	run := func(plan *fault.Plan, rt fault.Retry) (*qsim.Result, error) {
		sim := l.Simulator()
		sim.Opts.Fault = plan
		sim.Opts.Retry = rt
		return sim.Run(hour.Timestamps, cfg)
	}

	base, err := run(nil, fault.Retry{})
	if err != nil {
		return nil, err
	}

	sweep := r.AddTable("error-rate sweep (seed 7, straggler 10%, cold-spike 5%, retries ≤2)",
		"error rate", "batches", "retries", "failed reqs", "loss", "p95", "VCR", "cost/req")
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	for _, eps := range rates {
		plan := &fault.Plan{
			Seed:          7,
			ErrorRate:     eps,
			StragglerRate: 0.10,
			ColdSpikeRate: 0.05,
			ColdSpikeS:    0.2,
		}
		res, err := run(plan, retry)
		if err != nil {
			return nil, err
		}
		n := len(res.Latencies)
		loss := 0.0
		if n > 0 {
			loss = 100 * float64(res.FailedRequests) / float64(n)
		}
		sweep.AddRow(fmtPct(100*eps), fmtI(len(res.Batches)), fmtI(res.Retries),
			fmtI(res.FailedRequests), fmtPct(loss),
			fmtMS(res.LatencyPercentile(95)), fmtPct(res.VCR(l.Cfg.SLO)),
			fmtUSD(res.CostPerRequest()))
	}

	// Retry budget ablation at a fixed 20% error rate: what the retry layer
	// buys, and what it costs in tail latency.
	abl := r.AddTable("retry budget at 20% error rate",
		"max retries", "retries", "failed reqs", "loss", "p95", "cost/req")
	for _, maxR := range []int{0, 1, 2, 4} {
		plan := &fault.Plan{Seed: 7, ErrorRate: 0.2}
		res, err := run(plan, fault.Retry{Max: maxR, BaseS: 0.05, CapS: 0.4})
		if err != nil {
			return nil, err
		}
		n := len(res.Latencies)
		loss := 0.0
		if n > 0 {
			loss = 100 * float64(res.FailedRequests) / float64(n)
		}
		abl.AddRow(fmtI(maxR), fmtI(res.Retries), fmtI(res.FailedRequests), fmtPct(loss),
			fmtMS(res.LatencyPercentile(95)), fmtUSD(res.CostPerRequest()))
	}

	r.AddNote("fault-free baseline: %d requests in %d batches, p95 %s, cost/req %s",
		len(base.Latencies), len(base.Batches),
		fmtMS(base.LatencyPercentile(95)), fmtUSD(base.CostPerRequest()))
	r.AddNote("the simulator mirrors the gateway's fault model: outcome of invocation k is a pure function of (seed, k), so rerunning reproduces these tables byte for byte")
	return r, nil
}
