package experiments

import (
	"deepbat/internal/fault"
	"deepbat/internal/qsim"
	"deepbat/internal/sweep"
)

// Chaos stress-tests the serving path under the deterministic fault model
// (internal/fault): the first Azure paper-hour is replayed through the
// simulator's failure mirror at increasing error rates, with and without a
// retry budget, reporting how much latency, cost, and loss each level of
// chaos inflicts. Every {plan, retry} point is one sweep cell on its own
// simulator and registry; fault outcomes are a pure function of (seed,
// invocation index), so the tables reproduce byte for byte at any worker
// count.
func Chaos(l *Lab) (*Report, error) {
	r := &Report{ID: "chaos", Title: "fault injection: resilience of the serving path under chaos"}

	hour := l.Trace("azure").FirstHours(1)
	cfg := l.replayOptions().InitialConfig
	retry := fault.Retry{Max: 2, BaseS: 0.05, CapS: 0.4}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	budgets := []int{0, 1, 2, 4}

	// Cell 0 is the fault-free baseline, then the error-rate sweep, then the
	// retry-budget ablation at a fixed 20% error rate.
	type chaosCell struct {
		plan  *fault.Plan
		retry fault.Retry
	}
	cells := []chaosCell{{nil, fault.Retry{}}}
	for _, eps := range rates {
		cells = append(cells, chaosCell{
			plan: &fault.Plan{
				Seed:          7,
				ErrorRate:     eps,
				StragglerRate: 0.10,
				ColdSpikeRate: 0.05,
				ColdSpikeS:    0.2,
			},
			retry: retry,
		})
	}
	for _, maxR := range budgets {
		cells = append(cells, chaosCell{
			plan:  &fault.Plan{Seed: 7, ErrorRate: 0.2},
			retry: fault.Retry{Max: maxR, BaseS: 0.05, CapS: 0.4},
		})
	}

	results := make([]*qsim.Result, len(cells))
	if err := l.sweep(len(cells), func(c *sweep.Cell) error {
		sim := l.Simulator()
		sim.Opts.Fault = cells[c.Index].plan
		sim.Opts.Retry = cells[c.Index].retry
		sim.Opts.Obs = c.Obs()
		res, err := sim.Run(hour.Timestamps, cfg)
		if err != nil {
			return err
		}
		results[c.Index] = res
		return nil
	}); err != nil {
		return nil, err
	}
	base := results[0]
	loss := func(res *qsim.Result) float64 {
		if n := len(res.Latencies); n > 0 {
			return 100 * float64(res.FailedRequests) / float64(n)
		}
		return 0
	}

	rateTbl := r.AddTable("error-rate sweep (seed 7, straggler 10%, cold-spike 5%, retries ≤2)",
		"error rate", "batches", "retries", "failed reqs", "loss", "p95", "VCR", "cost/req")
	for i, eps := range rates {
		res := results[1+i]
		rateTbl.AddRow(fmtPct(100*eps), fmtI(len(res.Batches)), fmtI(res.Retries),
			fmtI(res.FailedRequests), fmtPct(loss(res)),
			fmtMS(res.LatencyPercentile(95)), fmtPct(res.VCR(l.Cfg.SLO)),
			fmtUSD(res.CostPerRequest()))
	}

	// Retry budget ablation at a fixed 20% error rate: what the retry layer
	// buys, and what it costs in tail latency.
	abl := r.AddTable("retry budget at 20% error rate",
		"max retries", "retries", "failed reqs", "loss", "p95", "cost/req")
	for i, maxR := range budgets {
		res := results[1+len(rates)+i]
		abl.AddRow(fmtI(maxR), fmtI(res.Retries), fmtI(res.FailedRequests), fmtPct(loss(res)),
			fmtMS(res.LatencyPercentile(95)), fmtUSD(res.CostPerRequest()))
	}

	r.AddNote("fault-free baseline: %d requests in %d batches, p95 %s, cost/req %s",
		len(base.Latencies), len(base.Batches),
		fmtMS(base.LatencyPercentile(95)), fmtUSD(base.CostPerRequest()))
	r.AddNote("the simulator mirrors the gateway's fault model: outcome of invocation k is a pure function of (seed, k), so rerunning reproduces these tables byte for byte")
	return r, nil
}
