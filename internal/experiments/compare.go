package experiments

import (
	"fmt"
	"math"

	"deepbat"
	"deepbat/internal/stats"
)

// periodsIn selects the replay periods whose start lies in [fromS, toS).
func periodsIn(res *deepbat.ReplayResult, fromS, toS float64) []int {
	var idx []int
	for i, p := range res.Periods {
		if p.StartS >= fromS && p.StartS < toS {
			idx = append(idx, i)
		}
	}
	return idx
}

// Fig6 reproduces Fig. 6: per-interval configuration cost returned by BATCH
// and DeepBAT over a snapshot of the Azure test half, where both meet the
// SLO (VCR = 0 under moderate burstiness) but BATCH occasionally costs more.
func Fig6(l *Lab) (*Report, error) {
	r := &Report{ID: "fig6", Title: "Cost comparison, Azure snapshot (both meet the SLO)"}
	if err := l.warmReplays("azure", []replayKey{
		{kindDeepBAT, l.Cfg.SLO}, {kindBATCH, l.Cfg.SLO},
	}); err != nil {
		return nil, err
	}
	db, err := l.Replay("azure", kindDeepBAT, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	ba, err := l.Replay("azure", kindBATCH, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	// Snapshot: a stretch of the test half (paper shows 19:40-19:50).
	from := float64(l.Cfg.Hours) * 0.8 * l.Cfg.HourSeconds
	to := from + 2*l.Cfg.HourSeconds
	t := r.AddTable("per-period cost (micro-USD/request)", "t_start_s", "deepbat", "batch")
	dIdx := periodsIn(db, from, to)
	bIdx := periodsIn(ba, from, to)
	n := len(dIdx)
	if len(bIdx) < n {
		n = len(bIdx)
	}
	var dTot, bTot float64
	for i := 0; i < n; i++ {
		dp, bp := db.Periods[dIdx[i]], ba.Periods[bIdx[i]]
		var dc, bc float64
		if dp.Requests > 0 {
			dc = dp.Cost / float64(dp.Requests)
		}
		if bp.Requests > 0 {
			bc = bp.Cost / float64(bp.Requests)
		}
		dTot += dc
		bTot += bc
		t.AddRow(fmtF(dp.StartS), fmtUSD(dc), fmtUSD(bc))
	}
	sum := r.AddTable("whole test half", "metric", "deepbat", "batch")
	testFrom := float64(l.Cfg.Hours) / 2 * l.Cfg.HourSeconds
	dVCR := vcrAfter(db, testFrom)
	bVCR := vcrAfter(ba, testFrom)
	sum.AddRow("VCR", fmtPct(dVCR), fmtPct(bVCR))
	sum.AddRow("cost/request", fmtUSD(costAfter(db, testFrom)), fmtUSD(costAfter(ba, testFrom)))
	r.AddNote("expected shape: both VCR ~0 on this moderately bursty trace; BATCH cost >= DeepBAT cost on average due to hourly (vs per-period) adaptation")
	return r, nil
}

// absLog2 returns |log2(x)| for positive x (0 otherwise).
func absLog2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	l := math.Log2(x)
	if l < 0 {
		return -l
	}
	return l
}

// vcrAfter computes the VCR over periods starting at or after fromS.
func vcrAfter(res *deepbat.ReplayResult, fromS float64) float64 {
	var lat []float64
	for _, p := range res.Periods {
		if p.StartS >= fromS {
			lat = append(lat, p.Latencies...)
		}
	}
	return stats.VCR(lat, res.SLO)
}

// costBetween computes cost per request over periods starting in [fromS, toS).
func costBetween(res *deepbat.ReplayResult, fromS, toS float64) float64 {
	var cost float64
	var n int
	for _, p := range res.Periods {
		if p.StartS >= fromS && p.StartS < toS {
			cost += p.Cost
			n += p.Requests
		}
	}
	if n == 0 {
		return 0
	}
	return cost / float64(n)
}

// costAfter computes cost per request over periods starting at/after fromS.
func costAfter(res *deepbat.ReplayResult, fromS float64) float64 {
	var cost float64
	var n int
	for _, p := range res.Periods {
		if p.StartS >= fromS {
			cost += p.Cost
			n += p.Requests
		}
	}
	if n == 0 {
		return 0
	}
	return cost / float64(n)
}

// latencyCostHour renders per-period P95 latency and cost for one hour of a
// replay pair (the template behind Figs. 7, 9).
func latencyCostHour(l *Lab, r *Report, traceName string, hourFrom, hourTo int) error {
	if err := l.warmReplays(traceName, []replayKey{
		{kindDeepBAT, l.Cfg.SLO}, {kindBATCH, l.Cfg.SLO},
	}); err != nil {
		return err
	}
	db, err := l.Replay(traceName, kindDeepBAT, l.Cfg.SLO)
	if err != nil {
		return err
	}
	ba, err := l.Replay(traceName, kindBATCH, l.Cfg.SLO)
	if err != nil {
		return err
	}
	from := float64(hourFrom) * l.Cfg.HourSeconds
	to := float64(hourTo) * l.Cfg.HourSeconds
	t := r.AddTable(
		fmt.Sprintf("hours %d-%d: per-period P95 latency and cost", hourFrom, hourTo),
		"t_start_s", "deepbat_p95", "batch_p95", "deepbat_cost", "batch_cost", "slo")
	dIdx := periodsIn(db, from, to)
	bIdx := periodsIn(ba, from, to)
	n := len(dIdx)
	if len(bIdx) < n {
		n = len(bIdx)
	}
	for i := 0; i < n; i++ {
		dp, bp := db.Periods[dIdx[i]], ba.Periods[bIdx[i]]
		dp95, _ := stats.Percentile(dp.Latencies, 95)
		bp95, _ := stats.Percentile(bp.Latencies, 95)
		var dc, bc float64
		if dp.Requests > 0 {
			dc = dp.Cost / float64(dp.Requests)
		}
		if bp.Requests > 0 {
			bc = bp.Cost / float64(bp.Requests)
		}
		t.AddRow(fmtF(dp.StartS), fmtMS(dp95), fmtMS(bp95), fmtUSD(dc), fmtUSD(bc), fmtMS(l.Cfg.SLO))
	}
	return nil
}

// Fig7 reproduces Fig. 7: latency and cost on the Alibaba trace (hours 5-6),
// where BATCH's hour-old fit violates the SLO and DeepBAT does not.
func Fig7(l *Lab) (*Report, error) {
	r := &Report{ID: "fig7", Title: "Alibaba hours 5-6: latency and cost (fine-tuned DeepBAT vs BATCH)"}
	if err := latencyCostHour(l, r, "alibaba", 5, 6); err != nil {
		return nil, err
	}
	r.AddNote("expected shape: BATCH periods frequently exceed the SLO; DeepBAT stays under it at somewhat higher cost")
	return r, nil
}

// Fig9 reproduces Fig. 9: the same comparison on the MAP-generated synthetic
// trace (hours 3-4).
func Fig9(l *Lab) (*Report, error) {
	r := &Report{ID: "fig9", Title: "Synthetic (MAP) hours 3-4: latency and cost"}
	if err := latencyCostHour(l, r, "synthetic", 3, 4); err != nil {
		return nil, err
	}
	r.AddNote("expected shape: as Fig. 7 — BATCH violates after intensity shifts, DeepBAT adapts at slightly higher cost")
	return r, nil
}

// Fig11 reproduces Fig. 11: the configurations (M, B, T) returned by
// DeepBAT, BATCH, and the ground truth over synthetic hours 3-4.
func Fig11(l *Lab) (*Report, error) {
	r := &Report{ID: "fig11", Title: "Synthetic hours 3-4: configurations returned per period"}
	if err := l.warmReplays("synthetic", []replayKey{
		{kindDeepBAT, l.Cfg.SLO}, {kindBATCH, l.Cfg.SLO}, {kindOracle, l.Cfg.SLO},
	}); err != nil {
		return nil, err
	}
	db, err := l.Replay("synthetic", kindDeepBAT, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	ba, err := l.Replay("synthetic", kindBATCH, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	gt, err := l.Replay("synthetic", kindOracle, l.Cfg.SLO)
	if err != nil {
		return nil, err
	}
	from := 3 * l.Cfg.HourSeconds
	to := 4 * l.Cfg.HourSeconds
	for _, sub := range []struct {
		name string
		res  *deepbat.ReplayResult
	}{{"DeepBAT", db}, {"BATCH", ba}, {"GroundTruth", gt}} {
		t := r.AddTable(sub.name, "t_start_s", "memory_mb", "batch", "timeout_ms")
		for _, i := range periodsIn(sub.res, from, to) {
			p := sub.res.Periods[i]
			t.AddRow(fmtF(p.StartS), fmtF(p.Config.MemoryMB),
				fmt.Sprintf("%d", p.Config.BatchSize), fmtF(p.Config.TimeoutS*1000))
		}
	}
	// Proximity to the ground truth: exact config matches are rare for any
	// controller (many configurations are near-equivalent), so we report the
	// mean per-dimension log2 distance — how many factors of two each knob
	// sits away from the oracle's choice (0 = identical).
	distance := func(res *deepbat.ReplayResult) (dm, db2, dt float64) {
		idx := periodsIn(res, from, to)
		gidx := periodsIn(gt, from, to)
		n := len(idx)
		if len(gidx) < n {
			n = len(gidx)
		}
		if n == 0 {
			return 0, 0, 0
		}
		for i := 0; i < n; i++ {
			c := res.Periods[idx[i]].Config
			g := gt.Periods[gidx[i]].Config
			dm += absLog2(c.MemoryMB / g.MemoryMB)
			db2 += absLog2(float64(c.BatchSize) / float64(g.BatchSize))
			dt += absLog2((c.TimeoutS + 1e-6) / (g.TimeoutS + 1e-6))
		}
		f := float64(n)
		return dm / f, db2 / f, dt / f
	}
	sum := r.AddTable("mean log2 distance to the ground-truth configuration (0 = identical)",
		"controller", "memory", "batch", "timeout")
	dm, db2, dt := distance(db)
	sum.AddRow("DeepBAT", fmtF(dm), fmtF(db2), fmtF(dt))
	bm, bb, bt := distance(ba)
	sum.AddRow("BATCH", fmtF(bm), fmtF(bb), fmtF(bt))
	r.AddNote("expected shape: DeepBAT tracks the ground-truth configurations more closely than BATCH")
	return r, nil
}

// Fig12 reproduces Fig. 12 and the surrounding SLO-sweep discussion: latency
// under SLO = 0.15 s for synthetic hours 2-3, plus the VCR summary at SLOs
// {0.05, 0.15, 0.2, 0.25}.
func Fig12(l *Lab) (*Report, error) {
	r := &Report{ID: "fig12", Title: "Synthetic hours 2-3 under SLO=0.15s (+ SLO sweep)"}
	const slo = 0.15
	sloSweep := []float64{0.05, 0.15, 0.2}
	// Warm every replay the figure needs — the 0.15 headline pair and the
	// SLO sweep — as parallel cells, then assemble from the cache.
	keys := make([]replayKey, 0, 2*len(sloSweep))
	for _, s := range sloSweep {
		keys = append(keys, replayKey{kindDeepBAT, s}, replayKey{kindBATCH, s})
	}
	if err := l.warmReplays("synthetic", keys); err != nil {
		return nil, err
	}
	db, err := l.Replay("synthetic", kindDeepBAT, slo)
	if err != nil {
		return nil, err
	}
	ba, err := l.Replay("synthetic", kindBATCH, slo)
	if err != nil {
		return nil, err
	}
	from := 2 * l.Cfg.HourSeconds
	to := 3 * l.Cfg.HourSeconds
	t := r.AddTable("per-period P95 latency", "t_start_s", "deepbat_p95", "batch_p95", "slo")
	dIdx := periodsIn(db, from, to)
	bIdx := periodsIn(ba, from, to)
	n := len(dIdx)
	if len(bIdx) < n {
		n = len(bIdx)
	}
	for i := 0; i < n; i++ {
		dp, bp := db.Periods[dIdx[i]], ba.Periods[bIdx[i]]
		dp95, _ := stats.Percentile(dp.Latencies, 95)
		bp95, _ := stats.Percentile(bp.Latencies, 95)
		t.AddRow(fmtF(dp.StartS), fmtMS(dp95), fmtMS(bp95), fmtMS(slo))
	}
	sloTbl := r.AddTable("VCR across SLO settings (full trace)", "slo", "deepbat_vcr", "batch_vcr")
	for _, s := range sloSweep {
		d, err := l.Replay("synthetic", kindDeepBAT, s)
		if err != nil {
			return nil, err
		}
		b, err := l.Replay("synthetic", kindBATCH, s)
		if err != nil {
			return nil, err
		}
		sloTbl.AddRow(fmtMS(s), fmtPct(d.VCR()), fmtPct(b.VCR()))
	}
	r.AddNote("expected shape: DeepBAT latency under the SLO line, BATCH above it after workload shifts; the gap persists across SLO settings")
	return r, nil
}
