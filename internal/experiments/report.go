package experiments

import (
	"fmt"
	"strings"
)

// Table is one plain-text table of an experiment report.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	Notes  []string
}

// AddTable appends a table and returns it for filling.
func (r *Report) AddTable(title string, cols ...string) *Table {
	t := &Table{Title: title, Cols: cols}
	r.Tables = append(r.Tables, t)
	return t
}

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtI formats an integer.
func fmtI(v int) string { return fmt.Sprintf("%d", v) }

// fmtMS formats seconds as milliseconds.
func fmtMS(v float64) string { return fmt.Sprintf("%.1fms", v*1000) }

// fmtUSD formats a small USD amount in micro-dollars.
func fmtUSD(v float64) string { return fmt.Sprintf("%.3fu$", v*1e6) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
