package experiments

import (
	"fmt"
	"math"

	"deepbat/internal/fleet"
	"deepbat/internal/replay"
	"deepbat/internal/sweep"
	"deepbat/internal/workload"
)

// FleetExp evaluates the fleet planner end to end: {class count x SLO
// spread x merge on/off}, where each cell plans a fleet over a correlated-
// burst trace's per-class arrival windows (solo ground-truth search per
// class, then the HarmonyBatch-style merge pass when enabled) and replays
// the class-labeled trace through the real fleet front door under the
// resulting assignment. Cells fan out across sweep workers; every cell's
// planner runs its own grid searches serially and the replay driver is
// single-threaded on a manual clock, so the table is byte-identical at any
// -workers value. The rows to read: at spread > 1 the merge pass packs
// SLO-compatible classes onto shared groups and the predicted AND actual
// cost drop versus the per-class-only plan, while every class still meets
// its own SLO.
func FleetExp(l *Lab) (*Report, error) {
	rep := &Report{ID: "fleet", Title: "Fleet planning: {class count x SLO spread x merge} through the fleet front door"}

	counts := []int{2, 3}
	spreads := []float64{1, 4}
	merges := []bool{false, true}
	const baseSLO = 0.2

	// Phase 1: one correlated-burst trace per class count, shared by the
	// matrix cells below through the lab's read-only cache.
	traces := make([]*workload.Trace, len(counts))
	if err := l.sweep(len(counts), func(c *sweep.Cell) error {
		spec := workload.DefaultSpec("corrburst")
		spec.Hours, spec.HourSeconds = 2, 30
		spec.Classes = counts[c.Index]
		t, err := l.WL.Generate(spec)
		if err != nil {
			return err
		}
		traces[c.Index] = t
		return nil
	}); err != nil {
		return nil, err
	}
	for i, t := range traces {
		digest, err := l.WL.Digest(t)
		if err != nil {
			return nil, err
		}
		rep.AddNote("%d classes: corrburst, %d requests, tracev1 digest %016x",
			counts[i], len(t.Reqs), digest)
	}

	// Phase 2: the full matrix. Class i's SLO is baseSLO*spread^i, so
	// spread=1 is the single-SLO control and spread=4 the multi-SLO case the
	// merge pass is for.
	type cellKey struct{ ci, si, mi int }
	cells := make([]cellKey, 0, len(counts)*len(spreads)*len(merges))
	for ci := range counts {
		for si := range spreads {
			for mi := range merges {
				cells = append(cells, cellKey{ci, si, mi})
			}
		}
	}
	rows := make([][]string, len(cells))
	if err := l.sweep(len(cells), func(c *sweep.Cell) error {
		k := cells[c.Index]
		t := traces[k.ci]
		plan := fleet.Plan{Merge: merges[k.mi]}
		for i, name := range t.Header.Classes {
			plan.Classes = append(plan.Classes, fleet.ClassSpec{
				Name: name,
				SLO:  baseSLO * math.Pow(spreads[k.si], float64(i)),
			})
		}
		windows := make([][]float64, len(plan.Classes))
		for _, rq := range t.Reqs {
			windows[rq.Class] = append(windows[rq.Class], rq.AtS)
		}
		a, err := fleet.Optimize(plan, windows, fleet.OptimizerConfig{Workers: 1})
		if err != nil {
			return fmt.Errorf("fleet: plan %dx%g: %w", counts[k.ci], spreads[k.si], err)
		}
		r, err := replay.RunFleet(replay.FleetConfig{Trace: t, Plan: plan, Assignment: a, Cache: l.WL})
		if err != nil {
			return fmt.Errorf("fleet: replay %dx%g: %w", counts[k.ci], spreads[k.si], err)
		}
		// The binding SLO view: the worst per-class p95 as a fraction of that
		// class's own SLO (<= 1 means every class met its objective).
		worst := 0.0
		for _, row := range r.Classes {
			if ratio := row.P95MS / (row.SLO * 1000); ratio > worst {
				worst = ratio
			}
		}
		mergeLabel := "off"
		if merges[k.mi] {
			mergeLabel = "on"
		}
		rows[c.Index] = []string{
			fmtI(counts[k.ci]), fmtF(spreads[k.si]), mergeLabel,
			fmtI(len(a.Groups)), fmtUSD(a.SplitCostUSD), fmtUSD(a.MergedCostUSD),
			fmtUSD(r.CostUSD), fmtF(r.Totals.GoodputRPS), fmtF(worst),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	tbl := rep.AddTable("planner + fleet replay: corrburst, 2 paper-hours at 30 s/hour, SLO_i = 0.2s x spread^i",
		"classes", "spread", "merge", "groups", "pred_split", "pred_merged",
		"cost", "good_rps", "worst_p95/slo")
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	rep.AddNote("merge acceptance: a unit joins a group only if the merged window's best (M,B,T) still meets the group's strictest SLO at p95 AND predicts strictly cheaper than the split groups")
	rep.AddNote("pred_split = predicted cost with every class on its own group; pred_merged = predicted cost of the final grouping; cost = actual replayed spend")
	return rep, nil
}
