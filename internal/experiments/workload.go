package experiments

import (
	"deepbat/internal/lambda"
	"deepbat/internal/stats"
)

// Fig1 reproduces Fig. 1: the impact of memory size, batch size, and timeout
// on latency and cost, simulated over an Azure window with the two other
// knobs fixed.
func Fig1(l *Lab) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Latency/cost impact of M, B, T (Azure window)"}
	tr := l.Trace("azure")
	// A mid-trace window with steady traffic.
	win := tr.Hour(l.Cfg.Hours / 2)
	if len(win) == 0 {
		win = tr.Timestamps
	}
	sim := l.Simulator()

	run := func(cfg lambda.Config) (p95, cost float64, err error) {
		res, err := sim.Run(win, cfg)
		if err != nil {
			return 0, 0, err
		}
		return res.LatencyPercentile(95), res.CostPerRequest(), nil
	}

	base := lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.1}

	tm := r.AddTable("(a) memory size, B=8 T=100ms", "memory_mb", "p95_latency", "cost_per_req")
	for _, m := range []float64{256, 512, 1024, 2048, 3008, 4096, 6144} {
		cfg := base
		cfg.MemoryMB = m
		p95, cost, err := run(cfg)
		if err != nil {
			return nil, err
		}
		tm.AddRow(fmtF(m), fmtMS(p95), fmtUSD(cost))
	}

	tb := r.AddTable("(b) batch size, M=2048 T=100ms", "batch", "p95_latency", "cost_per_req")
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := base
		cfg.BatchSize = b
		p95, cost, err := run(cfg)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmtF(float64(b)), fmtMS(p95), fmtUSD(cost))
	}

	tt := r.AddTable("(c) timeout, M=2048 B=8", "timeout_ms", "p95_latency", "cost_per_req")
	for _, t := range []float64{0, 0.01, 0.025, 0.05, 0.1, 0.2, 0.5} {
		cfg := base
		cfg.TimeoutS = t
		p95, cost, err := run(cfg)
		if err != nil {
			return nil, err
		}
		tt.AddRow(fmtF(t*1000), fmtMS(p95), fmtUSD(cost))
	}
	r.AddNote("expected shape: latency falls then flattens with memory while cost rises past the CPU cap; batching and timeouts cut cost but raise latency")
	return r, nil
}

// Fig4 reproduces Fig. 4: arrival rate of the four traces, per paper-hour.
func Fig4(l *Lab) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Arrival rate of the four workloads (req/s per hour)"}
	t := r.AddTable("", "hour", "azure", "twitter", "alibaba", "synthetic")
	names := []string{"azure", "twitter", "alibaba", "synthetic"}
	series := make([][]float64, len(names))
	for i, n := range names {
		tr := l.Trace(n)
		rates := make([]float64, l.Cfg.Hours)
		for h := range rates {
			rates[h] = float64(len(tr.Hour(h))) / l.Cfg.HourSeconds
		}
		series[i] = rates
	}
	for h := 0; h < l.Cfg.Hours; h++ {
		t.AddRow(fmtF(float64(h)),
			fmtF(series[0][h]), fmtF(series[1][h]), fmtF(series[2][h]), fmtF(series[3][h]))
	}
	r.AddNote("expected shape: azure diurnal, twitter flat, alibaba flat with sharp peaks (hours 4/6/20), synthetic strongly varying")
	return r, nil
}

// Fig5 reproduces Fig. 5: the hourly index of dispersion of the four traces.
func Fig5(l *Lab) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Index of dispersion (IDC) per hour"}
	t := r.AddTable("", "hour", "azure", "twitter", "alibaba", "synthetic")
	names := []string{"azure", "twitter", "alibaba", "synthetic"}
	maxLag := 200
	series := make([][]float64, len(names))
	for i, n := range names {
		series[i] = l.Trace(n).HourlyIDC(maxLag)
	}
	for h := 0; h < l.Cfg.Hours; h++ {
		t.AddRow(fmtF(float64(h)),
			fmtF(series[0][h]), fmtF(series[1][h]), fmtF(series[2][h]), fmtF(series[3][h]))
	}
	sum := r.AddTable("mean IDC", "trace", "mean_idc")
	for i, n := range names {
		sum.AddRow(n, fmtF(stats.Mean(series[i])))
	}
	r.AddNote("expected ordering: twitter ~4 (mild), azure higher and variable, alibaba and synthetic much higher")
	return r, nil
}
