package experiments

import (
	"fmt"
	"math"
	"sort"

	"deepbat"
	"deepbat/internal/stats"
	"deepbat/internal/sweep"
)

// fig13Config returns the fixed configuration each trace's distribution is
// evaluated at (the paper pins one batching configuration per subplot).
func fig13Config(name string) deepbat.Config {
	switch name {
	case "alibaba":
		return deepbat.Config{MemoryMB: 2048, BatchSize: 16, TimeoutS: 0.1}
	case "synthetic":
		return deepbat.Config{MemoryMB: 2048, BatchSize: 10, TimeoutS: 0.05}
	default:
		return deepbat.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.1}
	}
}

// testWindows slices evaluation windows out of a trace's test region: the
// second half for Azure (the first half is training data), everything after
// the fine-tuning hour for the OOD traces, the full trace for Twitter.
func testWindows(l *Lab, name string, seqLen, maxWindows int) [][]float64 {
	tr := l.Trace(name)
	var inter []float64
	switch name {
	case "azure":
		inter = tr.LastHours(l.Cfg.Hours / 2).Interarrivals()
	case "alibaba", "synthetic":
		inter = tr.LastHours(l.Cfg.Hours - 1).Interarrivals()
	default:
		inter = tr.Interarrivals()
	}
	var out [][]float64
	stride := seqLen
	if len(inter) > seqLen*maxWindows {
		stride = (len(inter) - seqLen) / maxWindows
	}
	for start := 0; start+seqLen <= len(inter) && len(out) < maxWindows; start += stride {
		out = append(out, inter[start:start+seqLen])
	}
	return out
}

// systemFor returns the appropriately adapted system for a trace: the base
// Azure-trained model for azure/twitter, the fine-tuned one for the OOD
// traces.
func systemFor(l *Lab, name string) (*deepbat.System, error) {
	if name == "alibaba" || name == "synthetic" {
		return l.TunedSystem(name)
	}
	return l.BaseSystem()
}

// Fig13 reproduces Fig. 13: predicted vs observed latency distributions for
// the four traces, with the per-trace latency MAPE the paper reports
// (2.85% / 3.11% / 3.32% / 3.07% on its testbed).
func Fig13(l *Lab) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Latency distribution prediction (predicted vs simulated percentiles)"}
	names := []string{"azure", "twitter", "alibaba", "synthetic"}
	// Train the systems and generate the traces serially (training holds
	// the process-global grad mode), then evaluate each trace's windows as
	// one parallel cell — window evaluation is pure no-grad inference plus
	// simulation, so cells fan out and the report assembles in trace order.
	for _, name := range names {
		if _, err := systemFor(l, name); err != nil {
			return nil, err
		}
		l.Trace(name)
	}
	type fig13Out struct {
		used   int
		levels []float64
		pred   []float64 // per-level mean predicted latency
		obs    []float64 // per-level mean observed latency
		mape   float64
	}
	outs := make([]fig13Out, len(names))
	if err := l.sweep(len(names), func(c *sweep.Cell) error {
		name := names[c.Index]
		sys, err := systemFor(l, name)
		if err != nil {
			return err
		}
		sim := l.Simulator()
		cfg := fig13Config(name)
		windows := testWindows(l, name, sys.Model.Cfg.SeqLen, 40)
		if len(windows) == 0 {
			return nil
		}
		levels := sys.Model.Cfg.Percentiles
		predSum := make([]float64, len(levels))
		obsSum := make([]float64, len(levels))
		var preds, obs []float64
		used := 0
		for _, w := range windows {
			tgt, err := sim.Evaluate(w, cfg, levels)
			if err != nil {
				continue
			}
			p := sys.Model.Predict(w, cfg)
			for i := range levels {
				predSum[i] += p.Percentiles[i]
				obsSum[i] += tgt.Percentiles[i]
				preds = append(preds, p.Percentiles[i])
				obs = append(obs, tgt.Percentiles[i])
			}
			used++
		}
		if used == 0 {
			return nil
		}
		for i := range levels {
			predSum[i] /= float64(used)
			obsSum[i] /= float64(used)
		}
		outs[c.Index] = fig13Out{used: used, levels: levels, pred: predSum, obs: obsSum, mape: stats.MAPE(preds, obs)}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, name := range names {
		out := outs[i]
		if out.used == 0 {
			continue
		}
		t := r.AddTable(
			fmt.Sprintf("%s (%s, %d windows)", name, fig13Config(name).String(), out.used),
			"percentile", "predicted", "observed")
		for j, lv := range out.levels {
			t.AddRow(fmtF(lv), fmtMS(out.pred[j]), fmtMS(out.obs[j]))
		}
		r.AddNote("%s latency MAPE: %s", name, fmtPct(out.mape))
	}
	r.AddNote("expected shape: predicted percentile curves hug the observed ones on all four traces; MAPE within a few percent")
	return r, nil
}

// Fig14 reproduces Fig. 14: attention-score visualization. The paper
// concludes that the model (trained only on Azure) attends to the parts of
// the sequence with the longest interarrival gaps; we quantify that with the
// rank correlation between attention and gap length and the overlap of the
// top-attention positions with the top-gap positions.
func Fig14(l *Lab) (*Report, error) {
	r := &Report{ID: "fig14", Title: "Attention scores vs interarrival gaps (Azure-trained model, no fine-tuning)"}
	base, err := l.BaseSystem()
	if err != nil {
		return nil, err
	}
	t := r.AddTable("", "trace", "windows", "corr(attention, log gap)", "top5_overlap")
	names := []string{"azure", "twitter", "alibaba", "synthetic"}
	for _, name := range names {
		l.Trace(name) // generate serially so cells only read
	}
	type fig14Out struct {
		windows       int
		corr, overlap float64
	}
	outs := make([]fig14Out, len(names))
	// AttentionScores is pure no-grad inference on the shared base model, so
	// each trace is one parallel cell.
	if err := l.sweep(len(names), func(c *sweep.Cell) error {
		windows := testWindows(l, names[c.Index], base.Model.Cfg.SeqLen, 20)
		var corrs, overlaps []float64
		for _, w := range windows {
			scores := base.Model.AttentionScores(w)
			gaps := make([]float64, len(w))
			for i, x := range w {
				gaps[i] = math.Log(math.Max(x, 1e-7))
			}
			corrs = append(corrs, pearson(scores, gaps))
			overlaps = append(overlaps, topKOverlap(scores, gaps, 5))
		}
		if len(corrs) == 0 {
			return nil
		}
		outs[c.Index] = fig14Out{windows: len(corrs), corr: stats.Mean(corrs), overlap: stats.Mean(overlaps)}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, name := range names {
		if outs[i].windows == 0 {
			continue
		}
		t.AddRow(name, fmt.Sprintf("%d", outs[i].windows),
			fmtF(outs[i].corr), fmtPct(outs[i].overlap*100))
	}
	r.AddNote("expected shape: positive correlation on every trace — high attention aligns with long-gap positions, including on unseen (OOD) traces")
	return r, nil
}

// pearson returns the Pearson correlation coefficient of two equal-length
// series.
func pearson(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := 0; i < n; i++ {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// topKOverlap returns the fraction of the top-k positions of a that are also
// among the top-k positions of b.
func topKOverlap(a, b []float64, k int) float64 {
	if k <= 0 || len(a) != len(b) || len(a) < k {
		return 0
	}
	top := func(xs []float64) map[int]bool {
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] > xs[idx[j]] })
		set := make(map[int]bool, k)
		for _, i := range idx[:k] {
			set[i] = true
		}
		return set
	}
	ta, tb := top(a), top(b)
	match := 0
	for i := range ta {
		if tb[i] {
			match++
		}
	}
	return float64(match) / float64(k)
}
