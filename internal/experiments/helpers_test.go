package experiments

import (
	"math"
	"testing"
	"time"

	"deepbat"
	"deepbat/internal/core"
)

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := pearson(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-correlation = %v", got)
	}
	b := []float64{4, 3, 2, 1}
	if got := pearson(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti-correlation = %v", got)
	}
	if got := pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
	if got := pearson(a, []float64{1}); got != 0 {
		t.Fatalf("length mismatch = %v", got)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{9, 8, 7, 1, 2, 3}
	b := []float64{9, 8, 7, 1, 2, 3}
	if got := topKOverlap(a, b, 3); got != 1 {
		t.Fatalf("identical top-3 overlap = %v", got)
	}
	c := []float64{1, 2, 3, 9, 8, 7}
	if got := topKOverlap(a, c, 3); got != 0 {
		t.Fatalf("disjoint top-3 overlap = %v", got)
	}
	if got := topKOverlap(a, c, 0); got != 0 {
		t.Fatalf("k=0 overlap = %v", got)
	}
	if got := topKOverlap(a, []float64{1}, 3); got != 0 {
		t.Fatalf("short input overlap = %v", got)
	}
}

func TestPeriodsInAndCostBetween(t *testing.T) {
	res := &deepbat.ReplayResult{SLO: 0.1, Periods: []core.PeriodResult{
		{StartS: 0, Requests: 2, Cost: 2e-6, Latencies: []float64{0.05, 0.2}},
		{StartS: 10, Requests: 1, Cost: 4e-6, Latencies: []float64{0.05}},
		{StartS: 20, Requests: 1, Cost: 8e-6, Latencies: []float64{0.3}},
	}}
	idx := periodsIn(res, 0, 20)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("periodsIn = %v", idx)
	}
	// costBetween over the first two periods: 6e-6 over 3 requests.
	if got := costBetween(res, 0, 20); math.Abs(got-2e-6) > 1e-18 {
		t.Fatalf("costBetween = %v", got)
	}
	if got := costBetween(res, 100, 200); got != 0 {
		t.Fatalf("costBetween empty = %v", got)
	}
	// vcrAfter from 10: latencies {0.05, 0.3} -> 50%.
	if got := vcrAfter(res, 10); math.Abs(got-50) > 1e-9 {
		t.Fatalf("vcrAfter = %v", got)
	}
	if got := costAfter(res, 10); math.Abs(got-6e-6) > 1e-18 {
		t.Fatalf("costAfter = %v", got)
	}
}

func TestFig13ConfigPerTrace(t *testing.T) {
	for _, name := range []string{"azure", "twitter", "alibaba", "synthetic"} {
		cfg := fig13Config(name)
		if !cfg.Valid() {
			t.Fatalf("%s: invalid fig13 config %+v", name, cfg)
		}
	}
	if fig13Config("alibaba") == fig13Config("azure") {
		t.Fatal("alibaba should use a distinct configuration")
	}
}

func TestReplayResultHelpers(t *testing.T) {
	res := &deepbat.ReplayResult{SLO: 0.1,
		Decisions: 2, TotalDecision: 10 * time.Millisecond,
		Periods: []core.PeriodResult{{StartS: 0, Requests: 1, Latencies: []float64{0.05}, Cost: 1e-6}},
	}
	if res.MeanDecisionTime() != 5*time.Millisecond {
		t.Fatalf("MeanDecisionTime = %v", res.MeanDecisionTime())
	}
	if res.CostPerRequest() != 1e-6 {
		t.Fatalf("CostPerRequest = %v", res.CostPerRequest())
	}
	empty := &deepbat.ReplayResult{}
	if empty.MeanDecisionTime() != 0 || empty.CostPerRequest() != 0 || empty.VCR() != 0 {
		t.Fatal("empty replay helpers should be zero")
	}
}
