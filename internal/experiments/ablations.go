package experiments

import (
	"fmt"
	"time"

	"deepbat/internal/loss"
	"deepbat/internal/surrogate"
	"deepbat/internal/sweep"
)

// Ablations evaluates the design choices DESIGN.md calls out beyond the
// paper's own sensitivity analysis:
//
//   - the post-pooling multi-head attention block (Eq. 4) vs the plain
//     pooled vector;
//   - the combined Huber+MAPE loss vs pure Huber and pure MAPE;
//   - the SLO-violation penalty weighting vs uniform weights;
//   - the encode-once grid inference vs naively re-running the full model
//     for every candidate configuration.
func Ablations(l *Lab) (*Report, error) {
	r := &Report{ID: "ablations", Title: "Design-choice ablations (validation MAPE on Azure)"}

	type variant struct {
		name   string
		mutate func(*surrogate.ModelConfig)
		train  func(*surrogate.TrainConfig)
	}
	variants := []variant{
		{name: "full model (paper)"},
		{
			name:   "no post-pooling attention",
			mutate: func(mc *surrogate.ModelConfig) { mc.DisablePostAttention = true },
		},
		{
			name:  "pure Huber loss (alpha=0)",
			train: func(tc *surrogate.TrainConfig) { tc.Loss.Alpha = 0 },
		},
		{
			name:  "pure MAPE loss (alpha=1)",
			train: func(tc *surrogate.TrainConfig) { tc.Loss.Alpha = 1 },
		},
		{
			name:  "no SLO penalty weighting",
			train: func(tc *surrogate.TrainConfig) { tc.Loss.SLOPenalty = 1 },
		},
	}

	// One serial sweep cell per variant (training holds the process-global
	// grad mode, so the engine runs these on one worker); rows assemble from
	// the cells in variant order.
	models := make([]trained, len(variants))
	if err := l.sweepSerial(len(variants), func(c *sweep.Cell) error {
		v := variants[c.Index]
		m, val, err := l.trainVariant(v.mutate, v.train)
		if err != nil {
			return err
		}
		models[c.Index] = trained{m, val}
		return nil
	}); err != nil {
		return nil, err
	}
	t := r.AddTable("", "variant", "val_mape", "latency_mape", "params")
	for i, v := range variants {
		m, val := models[i].m, models[i].val
		t.AddRow(v.name, fmtPct(m.EvalMAPE(val)), fmtPct(m.LatencyMAPE(val)),
			fmt.Sprintf("%d", m.NumParams()))
	}
	fullModel := models[0].m

	// Encode-once vs naive grid inference.
	inter := l.Trace("azure").Interarrivals()
	window := inter[:fullModel.Cfg.SeqLen]
	cfgs := l.Cfg.Grid.Configs()
	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		fullModel.PredictGrid(window, cfgs)
	}
	fast := time.Since(start) / reps
	start = time.Now()
	for i := 0; i < reps; i++ {
		for _, cfg := range cfgs {
			fullModel.Predict(window, cfg)
		}
	}
	naive := time.Since(start) / reps
	inf := r.AddTable("grid inference over the candidate space",
		"strategy", "time_per_decision")
	inf.AddRow("encode-once (PredictGrid)", fast.String())
	inf.AddRow("naive full forward per config", naive.String())
	r.AddNote("encode-once speedup over naive grid inference: %.1fx", float64(naive)/float64(fast))
	r.AddNote("expected shape: the full model matches or beats each ablated variant; encode-once dominates naive inference because the sequence branch is the expensive part")
	return r, nil
}

// trainVariant trains a surrogate with architecture and training-config
// mutations applied, returning the model and its validation split.
func (l *Lab) trainVariant(mutateModel func(*surrogate.ModelConfig), mutateTrain func(*surrogate.TrainConfig)) (*surrogate.Model, *surrogate.Dataset, error) {
	mc := surrogate.DefaultModelConfig()
	mc.SeqLen = l.Cfg.SeqLen
	mc.Dropout = 0
	if mutateModel != nil {
		mutateModel(&mc)
	}
	tr := l.Trace("azure").FirstHours(l.Cfg.Hours / 2)
	sim := l.Simulator()
	bo := surrogate.DefaultBuildOptions(l.Cfg.Grid)
	bo.NumSamples = l.Cfg.TrainSamples
	bo.SeqLen = mc.SeqLen
	bo.Percentiles = mc.Percentiles
	bo.Seed = l.Cfg.Seed
	ds, err := surrogate.Build(tr, sim, bo)
	if err != nil {
		return nil, nil, err
	}
	train, val := ds.Split(0.15)
	m := surrogate.NewModel(mc)
	m.FitNormalization(train)
	tc := surrogate.DefaultTrainConfig()
	tc.Epochs = l.Cfg.TrainEpochs
	tc.SLO = l.Cfg.SLO
	tc.Loss = loss.Default()
	if mutateTrain != nil {
		mutateTrain(&tc)
	}
	if _, err := m.Train(train, val, tc); err != nil {
		return nil, nil, err
	}
	return m, val, nil
}
