package experiments

import (
	"strings"
	"testing"
)

// sharedLab is reused across tests so the expensive pre-training happens
// once per test binary.
var sharedLab = NewLab(QuickLabConfig())

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ablations", "chaos",
		"fig1", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fleet", "obs", "scenarios", "timing",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(sharedLab, "fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Cols: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Fatalf("table rendering: %q", out)
	}
	r := &Report{ID: "x", Title: "y"}
	r.AddTable("t", "c").AddRow("v")
	r.AddNote("hello %d", 42)
	s := r.String()
	if !strings.Contains(s, "== x: y ==") || !strings.Contains(s, "hello 42") {
		t.Fatalf("report rendering: %q", s)
	}
}

func TestWorkloadExperiments(t *testing.T) {
	for _, id := range []string{"fig1", "fig4", "fig5"} {
		rep, err := Run(sharedLab, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
	}
}

func TestObsExperiment(t *testing.T) {
	rep, err := Run(sharedLab, "obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want metric snapshot + event stream", len(rep.Tables))
	}
	out := rep.String()
	for _, want := range []string{
		"qsim_requests_total", "qsim_cold_starts_total",
		"optimizer_decisions_total", "dispatch", "decide",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("obs report missing %q:\n%s", want, out)
		}
	}
	// The experiment is deterministic end to end: same lab, same tables.
	again, err := Run(sharedLab, "obs")
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatal("obs experiment not reproducible within one lab")
	}
}

func TestChaosExperiment(t *testing.T) {
	rep, err := Run(sharedLab, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want error-rate sweep + retry ablation", len(rep.Tables))
	}
	out := rep.String()
	for _, want := range []string{"error rate", "failed reqs", "retry budget", "fault-free baseline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos report missing %q:\n%s", want, out)
		}
	}
	// Fault outcomes are pure functions of (seed, invocation index): the
	// report reproduces byte for byte.
	again, err := Run(sharedLab, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatal("chaos experiment not reproducible within one lab")
	}
}

func TestComparisonExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop replays are slow")
	}
	for _, id := range []string{"fig6", "fig7", "fig8"} {
		rep, err := Run(sharedLab, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		nonEmpty := false
		for _, tb := range rep.Tables {
			if len(tb.Rows) > 0 {
				nonEmpty = true
			}
		}
		if !nonEmpty {
			t.Fatalf("%s: all tables empty", id)
		}
	}
}

func TestSyntheticExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop replays are slow")
	}
	for _, id := range []string{"fig9", "fig10", "fig11"} {
		rep, err := Run(sharedLab, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
	}
}

func TestDistributionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("model training is slow")
	}
	for _, id := range []string{"fig13", "fig14"} {
		rep, err := Run(sharedLab, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
	}
}

func TestSLOSweepExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop replays are slow")
	}
	rep, err := Run(sharedLab, "fig12")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) < 2 {
		t.Fatalf("fig12 tables = %d", len(rep.Tables))
	}
	if len(rep.Tables[1].Rows) != 3 {
		t.Fatalf("fig12 SLO sweep rows = %d, want 3", len(rep.Tables[1].Rows))
	}
}

func TestSensitivityExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("per-setting training is slow")
	}
	for _, id := range []string{"fig15a", "fig15b"} {
		rep, err := Run(sharedLab, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables[0].Rows) != 4 {
			t.Fatalf("%s rows = %d, want 4", id, len(rep.Tables[0].Rows))
		}
	}
}

func TestAblationsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("per-variant training is slow")
	}
	rep, err := Run(sharedLab, "ablations")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("ablations tables = %d, want 2", len(rep.Tables))
	}
	if len(rep.Tables[0].Rows) != 5 {
		t.Fatalf("ablation variants = %d, want 5", len(rep.Tables[0].Rows))
	}
}

func TestTimingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("BATCH analytic optimization is slow")
	}
	rep, err := Run(sharedLab, "timing")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("timing rows = %d", len(rep.Tables[0].Rows))
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "speedup") {
			found = true
		}
	}
	if !found {
		t.Fatal("timing report lacks speedup note")
	}
}

func TestLabCaching(t *testing.T) {
	l := NewLab(QuickLabConfig())
	a := l.Trace("twitter")
	b := l.Trace("twitter")
	if a != b {
		t.Fatal("trace not cached")
	}
}
