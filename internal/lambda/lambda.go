// Package lambda models the serverless execution substrate of the paper:
// deterministic inference service times as a function of the function memory
// size M and batch size B, and the AWS Lambda pay-as-you-go pricing scheme
// (per-request fee plus GB-second fee with rounded billing duration).
//
// The paper (and BATCH before it) establish experimentally that ML inference
// service times on Lambda are deterministic given the configuration, that CPU
// allocation scales with the memory size, and that batching scales
// sublinearly thanks to intra-batch parallelism. Profiles here encode that
// functional family for a few representative model classes; they play the
// role of the TED-LIUM profiling data used in the paper.
package lambda

import (
	"fmt"
	"math"
)

// Memory bounds of AWS Lambda in MB (Eq. 10e of the paper).
const (
	MinMemoryMB = 128
	MaxMemoryMB = 10240
)

// Profile describes the deterministic service time of one ML model class:
//
//	s(M, B) = (Base + PerReq * B^Gamma) / cpuFactor(M)
//	cpuFactor(M) = min(M, MemCap) / MemRef
//
// Base is the fixed invocation overhead and PerReq the incremental per-request
// work, both in seconds at the reference memory MemRef. Gamma in (0, 1]
// captures sublinear batch scaling. MemCap is the memory size beyond which
// additional CPU no longer helps the model.
type Profile struct {
	Name    string
	Base    float64 // seconds at MemRef
	PerReq  float64 // seconds per request^Gamma at MemRef
	Gamma   float64
	MemRef  float64 // MB
	MemCap  float64 // MB
	ColdSec float64 // additional cold-start latency at MemRef, scaled like Base
}

// ServiceTime returns the deterministic execution time in seconds of a batch
// of b requests with memory m MB. It panics on non-positive batch size and
// clamps the memory to the Lambda limits.
func (p Profile) ServiceTime(m float64, b int) float64 {
	if b < 1 {
		panic(fmt.Sprintf("lambda: batch size %d < 1", b))
	}
	m = ClampMemory(m)
	return (p.Base + p.PerReq*math.Pow(float64(b), p.Gamma)) / p.cpuFactor(m)
}

// ColdStart returns the additional first-invocation latency at memory m.
func (p Profile) ColdStart(m float64) float64 {
	m = ClampMemory(m)
	return p.ColdSec / p.cpuFactor(m)
}

func (p Profile) cpuFactor(m float64) float64 {
	if m > p.MemCap {
		m = p.MemCap
	}
	return m / p.MemRef
}

// ClampMemory restricts m to the valid Lambda range.
func ClampMemory(m float64) float64 {
	if m < MinMemoryMB {
		return MinMemoryMB
	}
	if m > MaxMemoryMB {
		return MaxMemoryMB
	}
	return m
}

// Profiles holds the built-in model classes. "nlp-base" approximates the
// TED-LIUM speech/NLP inference of the paper's evaluation.
var Profiles = map[string]Profile{
	"nlp-base": {
		Name:   "nlp-base",
		Base:   0.020,
		PerReq: 0.004,
		Gamma:  0.8,
		MemRef: 2048,
		MemCap: 4096, ColdSec: 1.5,
	},
	"nlp-large": {
		Name:   "nlp-large",
		Base:   0.060,
		PerReq: 0.012,
		Gamma:  0.85,
		MemRef: 2048,
		MemCap: 8192, ColdSec: 3.0,
	},
	"cnn-small": {
		Name:   "cnn-small",
		Base:   0.008,
		PerReq: 0.0015,
		Gamma:  0.7,
		MemRef: 2048,
		MemCap: 3008, ColdSec: 0.8,
	},
}

// DefaultProfile is the model class used throughout the evaluation.
func DefaultProfile() Profile { return Profiles["nlp-base"] }

// Pricing is the AWS Lambda cost model.
type Pricing struct {
	// PerRequestUSD is the charge per invocation (USD 0.20 per million).
	PerRequestUSD float64
	// PerGBSecondUSD is the compute charge per GB-second.
	PerGBSecondUSD float64
	// BillingGranularity rounds the billed duration up (seconds); AWS
	// billed in 100 ms units at the time of BATCH and in 1 ms units today.
	BillingGranularity float64
}

// DefaultPricing returns the public AWS Lambda prices with 1 ms rounding.
func DefaultPricing() Pricing {
	return Pricing{
		PerRequestUSD:      0.20 / 1e6,
		PerGBSecondUSD:     0.0000166667,
		BillingGranularity: 0.001,
	}
}

// LegacyPricing returns the 100 ms-granularity pricing in effect when BATCH
// was published; coarser rounding makes batching even more attractive.
func LegacyPricing() Pricing {
	p := DefaultPricing()
	p.BillingGranularity = 0.1
	return p
}

// InvocationCost returns the USD cost of one invocation of duration seconds
// at memory m MB.
func (p Pricing) InvocationCost(m, duration float64) float64 {
	m = ClampMemory(m)
	billed := duration
	if p.BillingGranularity > 0 {
		billed = math.Ceil(duration/p.BillingGranularity) * p.BillingGranularity
	}
	return p.PerRequestUSD + billed*(m/1024)*p.PerGBSecondUSD
}

// CostPerRequest returns the USD cost per request of serving a batch of b
// requests taking duration seconds at memory m.
func (p Pricing) CostPerRequest(m, duration float64, b int) float64 {
	if b < 1 {
		panic(fmt.Sprintf("lambda: batch size %d < 1", b))
	}
	return p.InvocationCost(m, duration) / float64(b)
}

// Config is one candidate serverless configuration: the decision variables
// of the paper's optimization problem (Eq. 10).
type Config struct {
	MemoryMB  float64 // M
	BatchSize int     // B
	TimeoutS  float64 // T, seconds
}

// Valid reports whether the configuration satisfies the constraints
// (Eqs. 10c–10e).
func (c Config) Valid() bool {
	return c.BatchSize >= 1 && c.TimeoutS >= 0 &&
		c.MemoryMB >= MinMemoryMB && c.MemoryMB <= MaxMemoryMB
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("M=%gMB B=%d T=%gms", c.MemoryMB, c.BatchSize, c.TimeoutS*1000)
}

// Grid describes the candidate configuration space searched by both DeepBAT
// and BATCH.
type Grid struct {
	Memories  []float64 // MB
	Batches   []int
	TimeoutsS []float64 // seconds
}

// DefaultGrid returns the candidate space used in the evaluation: a span of
// Lambda memory sizes, batch sizes, and buffer timeouts.
func DefaultGrid() Grid {
	return Grid{
		Memories:  []float64{512, 1024, 1536, 2048, 3008, 4096},
		Batches:   []int{1, 2, 4, 8, 16, 32},
		TimeoutsS: []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.5},
	}
}

// Configs enumerates every configuration in the grid.
func (g Grid) Configs() []Config {
	out := make([]Config, 0, len(g.Memories)*len(g.Batches)*len(g.TimeoutsS))
	for _, m := range g.Memories {
		for _, b := range g.Batches {
			for _, t := range g.TimeoutsS {
				out = append(out, Config{MemoryMB: m, BatchSize: b, TimeoutS: t})
			}
		}
	}
	return out
}

// Size returns the number of configurations in the grid.
func (g Grid) Size() int { return len(g.Memories) * len(g.Batches) * len(g.TimeoutsS) }
