package lambda

import (
	"math"
	"testing"
	"testing/quick"
)

func TestServiceTimeMonotoneInMemory(t *testing.T) {
	p := DefaultProfile()
	// Fig. 1a of the paper: more memory -> lower latency (until the cap).
	prev := math.Inf(1)
	for _, m := range []float64{256, 512, 1024, 2048, 4096} {
		s := p.ServiceTime(m, 4)
		if s >= prev {
			t.Fatalf("service time not decreasing at M=%v: %v >= %v", m, s, prev)
		}
		prev = s
	}
	// Beyond the cap there is no further speedup.
	if p.ServiceTime(8192, 4) != p.ServiceTime(4096, 4) {
		t.Fatal("memory beyond MemCap should not speed up")
	}
}

func TestServiceTimeMonotoneInBatch(t *testing.T) {
	p := DefaultProfile()
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		s := p.ServiceTime(2048, b)
		if s <= prev {
			t.Fatalf("service time not increasing at B=%d", b)
		}
		prev = s
	}
}

func TestServiceTimeSublinearInBatch(t *testing.T) {
	p := DefaultProfile()
	// Doubling the batch should less-than-double the incremental work.
	s1 := p.ServiceTime(2048, 1)
	s16 := p.ServiceTime(2048, 16)
	if s16 >= 16*s1 {
		t.Fatalf("batching not sublinear: s(16)=%v vs 16*s(1)=%v", s16, 16*s1)
	}
}

func TestServiceTimePanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultProfile().ServiceTime(1024, 0)
}

func TestClampMemory(t *testing.T) {
	if ClampMemory(1) != MinMemoryMB {
		t.Fatal("low clamp")
	}
	if ClampMemory(99999) != MaxMemoryMB {
		t.Fatal("high clamp")
	}
	if ClampMemory(2048) != 2048 {
		t.Fatal("identity")
	}
}

func TestColdStartScalesWithMemory(t *testing.T) {
	p := DefaultProfile()
	if p.ColdStart(512) <= p.ColdStart(2048) {
		t.Fatal("cold start should be slower at low memory")
	}
}

func TestInvocationCost(t *testing.T) {
	pr := DefaultPricing()
	// 50 ms at 1024 MB: request fee + 0.050 * 1 GB * rate.
	got := pr.InvocationCost(1024, 0.050)
	want := 0.20/1e6 + 0.050*1.0*0.0000166667
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestBillingRoundsUp(t *testing.T) {
	pr := DefaultPricing()
	// 10.1 ms bills as 11 ms.
	got := pr.InvocationCost(1024, 0.0101)
	want := 0.20/1e6 + 0.011*1.0*0.0000166667
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("rounded cost = %v, want %v", got, want)
	}
	leg := LegacyPricing()
	// 10.1 ms bills as 100 ms under legacy pricing.
	got = leg.InvocationCost(1024, 0.0101)
	want = 0.20/1e6 + 0.1*1.0*0.0000166667
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("legacy rounded cost = %v, want %v", got, want)
	}
}

func TestCostPerRequestAmortizesBatch(t *testing.T) {
	pr := DefaultPricing()
	p := DefaultProfile()
	// Fig. 1b of the paper: larger batches cost less per request even though
	// the batch itself runs longer.
	c1 := pr.CostPerRequest(2048, p.ServiceTime(2048, 1), 1)
	c8 := pr.CostPerRequest(2048, p.ServiceTime(2048, 8), 8)
	c32 := pr.CostPerRequest(2048, p.ServiceTime(2048, 32), 32)
	if !(c32 < c8 && c8 < c1) {
		t.Fatalf("cost per request should fall with batch size: %v %v %v", c1, c8, c32)
	}
}

func TestCostGrowsWithMemory(t *testing.T) {
	pr := DefaultPricing()
	p := DefaultProfile()
	// Beyond the CPU cap, paying for more memory is pure waste (Fig. 1a).
	cCap := pr.CostPerRequest(4096, p.ServiceTime(4096, 4), 4)
	cOver := pr.CostPerRequest(8192, p.ServiceTime(8192, 4), 4)
	if cOver <= cCap {
		t.Fatalf("over-provisioned memory should cost more: %v vs %v", cOver, cCap)
	}
}

func TestCostPerRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultPricing().CostPerRequest(1024, 0.1, 0)
}

func TestConfigValid(t *testing.T) {
	good := Config{MemoryMB: 1024, BatchSize: 4, TimeoutS: 0.1}
	if !good.Valid() {
		t.Fatal("good config rejected")
	}
	for _, bad := range []Config{
		{MemoryMB: 64, BatchSize: 4, TimeoutS: 0.1},
		{MemoryMB: 20480, BatchSize: 4, TimeoutS: 0.1},
		{MemoryMB: 1024, BatchSize: 0, TimeoutS: 0.1},
		{MemoryMB: 1024, BatchSize: 4, TimeoutS: -1},
	} {
		if bad.Valid() {
			t.Fatalf("invalid config accepted: %+v", bad)
		}
	}
	if good.String() == "" {
		t.Fatal("String empty")
	}
}

func TestGridEnumerates(t *testing.T) {
	g := DefaultGrid()
	cfgs := g.Configs()
	if len(cfgs) != g.Size() {
		t.Fatalf("Configs len %d vs Size %d", len(cfgs), g.Size())
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if !c.Valid() {
			t.Fatalf("grid produced invalid config %+v", c)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c.String()] = true
	}
}

func TestServiceTimePositiveProperty(t *testing.T) {
	p := DefaultProfile()
	f := func(mRaw float64, bRaw uint8) bool {
		m := math.Abs(math.Mod(mRaw, 12000))
		b := int(bRaw%64) + 1
		s := p.ServiceTime(m, b)
		return s > 0 && !math.IsNaN(s) && !math.IsInf(s, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllProfilesSane(t *testing.T) {
	for name, p := range Profiles {
		if p.Name != name {
			t.Fatalf("profile %q has Name %q", name, p.Name)
		}
		if p.Base <= 0 || p.PerReq <= 0 || p.Gamma <= 0 || p.Gamma > 1 {
			t.Fatalf("profile %q has bad parameters: %+v", name, p)
		}
		if p.ServiceTime(2048, 1) <= 0 {
			t.Fatalf("profile %q service time not positive", name)
		}
	}
}
