//go:build !race

package surrogate

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
