package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// synthDataset fabricates a labeled dataset directly (no simulator), so the
// parallel-training tests stay fast and self-contained.
func synthDataset(n, seqLen int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	grid := tinyGrid().Configs()
	pcts := []float64{50, 75, 90, 95, 99}
	ds := &Dataset{Percentiles: pcts}
	for i := 0; i < n; i++ {
		seq := make([]float64, seqLen)
		for j := range seq {
			seq[j] = math.Exp(rng.NormFloat64()) * 0.01
		}
		base := 0.01 + 0.05*rng.Float64()
		target := make([]float64, 1+len(pcts))
		target[0] = 1e-6 * (1 + rng.Float64()) // cost
		for j := 1; j < len(target); j++ {
			base += 0.01 * rng.Float64()
			target[j] = base
		}
		ds.Samples = append(ds.Samples, Sample{
			Seq:    seq,
			Config: grid[rng.Intn(len(grid))],
			Target: target,
		})
	}
	return ds
}

// trainFresh trains a fresh model on ds with the given worker count and
// returns the model and its history. Dropout is enabled to prove that the
// per-sample mask seeding is worker-invariant.
func trainFresh(t *testing.T, ds *Dataset, workers, epochs int) (*Model, *History) {
	t.Helper()
	mc := tinyModelConfig()
	mc.Dropout = 0.1
	m := NewModel(mc)
	m.FitNormalization(ds)
	tc := DefaultTrainConfig()
	tc.Epochs = epochs
	tc.Workers = workers
	hist, err := m.Train(ds, nil, tc)
	if err != nil {
		t.Fatal(err)
	}
	return m, hist
}

// TestTrainDeterministicAcrossWorkerCounts is the equivalence contract of
// data-parallel training: for a fixed seed, 1 worker and N workers must
// produce identical per-epoch losses and identical final weights.
func TestTrainDeterministicAcrossWorkerCounts(t *testing.T) {
	ds := synthDataset(24, 16, 5)
	const epochs = 4
	mSerial, hSerial := trainFresh(t, ds, 1, epochs)
	for _, workers := range []int{2, 4} {
		mPar, hPar := trainFresh(t, ds, workers, epochs)
		if len(hPar.TrainLoss) != len(hSerial.TrainLoss) {
			t.Fatalf("history length %d vs %d", len(hPar.TrainLoss), len(hSerial.TrainLoss))
		}
		for e := range hSerial.TrainLoss {
			if d := math.Abs(hSerial.TrainLoss[e] - hPar.TrainLoss[e]); d > 1e-9 {
				t.Fatalf("workers=%d epoch %d loss %v vs serial %v (|diff| %v)",
					workers, e, hPar.TrainLoss[e], hSerial.TrainLoss[e], d)
			}
		}
		ps, pp := mSerial.Params(), mPar.Params()
		for i := range ps {
			for j := range ps[i].Data {
				if ps[i].Data[j] != pp[i].Data[j] {
					t.Fatalf("workers=%d: param %d element %d diverged: %v vs %v",
						workers, i, j, pp[i].Data[j], ps[i].Data[j])
				}
			}
		}
		// Matching weights must give matching predictions.
		for _, s := range ds.Samples[:4] {
			a := mSerial.Predict(s.Seq, s.Config)
			b := mPar.Predict(s.Seq, s.Config)
			if a.CostPerRequest != b.CostPerRequest {
				t.Fatalf("workers=%d: predictions diverged: %v vs %v", workers, a, b)
			}
			for k := range a.Percentiles {
				if a.Percentiles[k] != b.Percentiles[k] {
					t.Fatalf("workers=%d: percentile %d diverged", workers, k)
				}
			}
		}
	}
}

// TestTrainWorkerCountEdgeCases covers workers > batch, workers > dataset,
// and a batch that does not divide evenly across workers.
func TestTrainWorkerCountEdgeCases(t *testing.T) {
	ds := synthDataset(7, 16, 9) // last batch has 7 % 4 = 3 samples
	mc := tinyModelConfig()
	m := NewModel(mc)
	m.FitNormalization(ds)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchSize = 4
	tc.Workers = 16 // clamped to the batch size
	if _, err := m.Train(ds, nil, tc); err != nil {
		t.Fatal(err)
	}
}

// TestEvalParallelMatchesSerialValues pins the parallel no-grad evaluators
// to a serial tape-free reference computed sample by sample.
func TestEvalParallelMatchesSerialValues(t *testing.T) {
	ds := synthDataset(20, 16, 11)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	cfg := DefaultTrainConfig()

	var want float64
	for _, s := range ds.Samples {
		want += m.sampleLoss(s, cfg).Item()
	}
	want /= float64(ds.Len())
	if got := m.EvalLoss(ds, cfg); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EvalLoss = %v, want %v", got, want)
	}

	// Predict (tape-free) must agree with the raw grad-mode forward pass.
	for _, s := range ds.Samples[:5] {
		out := m.Forward(s.Seq, s.Config)
		want := m.decode(out.Data, s.Config)
		got := m.Predict(s.Seq, s.Config)
		if got.CostPerRequest != want.CostPerRequest {
			t.Fatalf("no-grad Predict cost %v vs grad-mode %v", got.CostPerRequest, want.CostPerRequest)
		}
		for i := range want.Percentiles {
			if got.Percentiles[i] != want.Percentiles[i] {
				t.Fatalf("no-grad Predict percentile %d differs", i)
			}
		}
	}

	if got := m.UnderpredictionQuantile(ds, 95, 0.9); math.IsNaN(got) || got < 0 {
		t.Fatalf("UnderpredictionQuantile = %v", got)
	}
	if got := m.EvalMAPE(ds); got <= 0 {
		t.Fatalf("EvalMAPE = %v", got)
	}
}
