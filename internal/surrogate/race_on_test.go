//go:build race

package surrogate

// raceEnabled reports that this binary was built with -race. sync.Pool
// deliberately drops items at random under the race detector, so
// allocation-budget tests that rely on pool hits must skip.
const raceEnabled = true
