package surrogate

import (
	"math"
	"math/rand"
	"testing"

	"deepbat/internal/lambda"
	"deepbat/internal/tensor"
)

// bitEqual reports whether two floats have identical bit patterns.
func bitEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// comparePredictions fails the test unless the batched prediction matches the
// per-candidate one bit for bit.
func comparePredictions(t *testing.T, tag string, got, want Prediction) {
	t.Helper()
	if !bitEqual(got.CostPerRequest, want.CostPerRequest) {
		t.Fatalf("%s: cost %v vs %v (bitwise)", tag, got.CostPerRequest, want.CostPerRequest)
	}
	if len(got.Percentiles) != len(want.Percentiles) {
		t.Fatalf("%s: percentile lengths %d vs %d", tag, len(got.Percentiles), len(want.Percentiles))
	}
	for j := range want.Percentiles {
		if !bitEqual(got.Percentiles[j], want.Percentiles[j]) {
			t.Fatalf("%s: percentile %d = %v vs %v (bitwise)", tag, j, got.Percentiles[j], want.Percentiles[j])
		}
	}
}

// randomWindow draws a plausible interarrival window of length n.
func randomWindow(rng *rand.Rand, n int) []float64 {
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 0.001 + 0.05*rng.Float64()
	}
	return seq
}

// randomGrid draws a small random configuration grid.
func randomGrid(rng *rand.Rand) []lambda.Config {
	n := 1 + rng.Intn(12)
	cfgs := make([]lambda.Config, n)
	for i := range cfgs {
		cfgs[i] = lambda.Config{
			MemoryMB:  float64(512 * (1 + rng.Intn(8))),
			BatchSize: 1 + rng.Intn(16),
			TimeoutS:  0.01 + 0.2*rng.Float64(),
		}
	}
	return cfgs
}

// TestPredictGridBitIdenticalToPredict pins the tentpole contract: the
// row-batched grid sweep must reproduce the per-candidate Predict path bit
// for bit, across model seeds, window lengths, and random grids. The rows of
// a matrix product are computed independently with a fixed summation order,
// so batching must not change a single bit.
func TestPredictGridBitIdenticalToPredict(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		for _, winLen := range []int{8, 16, 33} {
			rng := rand.New(rand.NewSource(seed*100 + int64(winLen)))
			cfg := tinyModelConfig()
			cfg.Seed = seed
			m := NewModel(cfg)
			// Non-trivial normalization so the feature branch sees varied rows.
			m.Norm.SeqMean, m.Norm.SeqStd = -3, 1.5
			m.Norm.FeatMean = [3]float64{1500, 4, 0.05}
			m.Norm.FeatStd = [3]float64{700, 3, 0.03}
			seq := randomWindow(rng, winLen)
			cfgs := append(tinyGrid().Configs(), randomGrid(rng)...)
			grid := m.PredictGrid(seq, cfgs)
			if len(grid) != len(cfgs) {
				t.Fatalf("PredictGrid returned %d of %d", len(grid), len(cfgs))
			}
			for i, c := range cfgs {
				comparePredictions(t, c.String(), grid[i], m.Predict(seq, c))
			}
		}
	}
}

// FuzzPredictGridMatchesPredict fuzzes the batched/per-candidate equivalence
// over model seed, window length, and grid draw.
func FuzzPredictGridMatchesPredict(f *testing.F) {
	f.Add(int64(1), uint8(16))
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, winLen uint8) {
		n := int(winLen)%64 + 1
		rng := rand.New(rand.NewSource(seed))
		cfg := tinyModelConfig()
		cfg.Seed = seed
		m := NewModel(cfg)
		seq := randomWindow(rng, n)
		cfgs := randomGrid(rng)
		grid := m.PredictGrid(seq, cfgs)
		for i, c := range cfgs {
			comparePredictions(t, c.String(), grid[i], m.Predict(seq, c))
		}
	})
}

// TestPredictGridEmpty keeps the zero-candidate edge case panic-free.
func TestPredictGridEmpty(t *testing.T) {
	m := NewModel(tinyModelConfig())
	if got := m.PredictGrid(randomWindow(rand.New(rand.NewSource(1)), 8), nil); len(got) != 0 {
		t.Fatalf("PredictGrid(nil grid) = %d predictions", len(got))
	}
}

// TestEvalBatchedMatchesPerSample pins the batched validation passes to the
// per-sample forward they replaced: forwardRows row i must equal Forward of
// sample i bitwise, and EvalLoss must equal the sample-order mean of
// sampleLoss.
func TestEvalBatchedMatchesPerSample(t *testing.T) {
	ds := tinyDataset(t, 6, 16)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	tc := DefaultTrainConfig()

	var rows [][]float64
	tensor.NoGrad(func() {
		out := m.forwardRows(ds)
		w := m.Cfg.OutputDim()
		for i := 0; i < ds.Len(); i++ {
			rows = append(rows, append([]float64(nil), out.Data[i*w:(i+1)*w]...))
		}
		gridScratch.Put(out)
	})
	var wantLoss float64
	tensor.NoGrad(func() {
		for i, s := range ds.Samples {
			want := m.Forward(s.Seq, s.Config)
			for j := range want.Data {
				if !bitEqual(rows[i][j], want.Data[j]) {
					t.Fatalf("sample %d output %d = %v vs %v (bitwise)", i, j, rows[i][j], want.Data[j])
				}
			}
			wantLoss += m.sampleLoss(s, tc).Item()
		}
	})
	wantLoss /= float64(ds.Len())
	if got := m.EvalLoss(ds, tc); !bitEqual(got, wantLoss) {
		t.Fatalf("EvalLoss = %v, want %v (bitwise)", got, wantLoss)
	}
}

// TestPredictGridAllocBudget guards the tentpole's allocation win: a
// steady-state sweep over the default 216-candidate grid must stay far below
// the per-candidate path's 11,664 allocs (ISSUE 4 demands at least 5x fewer;
// the budget holds the batched path to much less, leaving room for the
// encoder's own per-op allocations).
func TestPredictGridAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc budget is not meaningful")
	}
	m := NewModel(tinyModelConfig())
	seq := randomWindow(rand.New(rand.NewSource(2)), m.Cfg.SeqLen)
	cfgs := lambda.DefaultGrid().Configs()
	m.PredictGrid(seq, cfgs) // warm the scratch pool
	allocs := testing.AllocsPerRun(5, func() {
		m.PredictGrid(seq, cfgs)
	})
	const budget = 700
	if allocs > budget {
		t.Fatalf("PredictGrid allocates %.0f/op over %d candidates, budget %d", allocs, len(cfgs), budget)
	}
}

// TestAttentionScoresTapeFreeCapture checks that the NoGrad visualization
// pass sees exactly the scores a grad-mode forward records.
func TestAttentionScoresTapeFreeCapture(t *testing.T) {
	m := NewModel(tinyModelConfig())
	seq := randomWindow(rand.New(rand.NewSource(3)), 16)
	got := m.AttentionScores(seq)

	// Grad-mode reference: EncodeSequence records scores on the tape path.
	m.EncodeSequence(seq)
	agg := make([]float64, len(seq))
	for _, h := range m.enc.Layers[0].Att.LastScores() {
		for r := 0; r < h.Rows(); r++ {
			for c := 0; c < h.Cols(); c++ {
				agg[c] += h.At(r, c)
			}
		}
	}
	total := 0.0
	for _, v := range agg {
		total += v
	}
	for i := range agg {
		agg[i] /= total
	}
	for i := range agg {
		if !bitEqual(got[i], agg[i]) {
			t.Fatalf("score %d = %v, want %v (bitwise)", i, got[i], agg[i])
		}
	}
}
