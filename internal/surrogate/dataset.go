package surrogate

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
	"deepbat/internal/trace"
)

// Sample is one supervised training example: an interarrival window, a
// candidate configuration, and the ground-truth target vector
// [cost, p_1, ..., p_k] obtained from the simulator.
type Sample struct {
	Seq    []float64
	Config lambda.Config
	Target []float64
}

// Dataset is a set of samples with the percentile layout they were built
// for.
type Dataset struct {
	Samples     []Sample
	Percentiles []float64
}

// Split partitions the dataset into train and validation subsets (the last
// valFrac of the samples after the builder's shuffling).
func (d *Dataset) Split(valFrac float64) (train, val *Dataset) {
	n := len(d.Samples)
	cut := n - int(float64(n)*valFrac)
	if cut <= 0 {
		cut = n
	}
	return &Dataset{Samples: d.Samples[:cut], Percentiles: d.Percentiles},
		&Dataset{Samples: d.Samples[cut:], Percentiles: d.Percentiles}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// BuildOptions configures dataset generation.
type BuildOptions struct {
	// NumSamples is the number of (window, configuration) pairs to label.
	NumSamples int
	// SeqLen is the interarrival window length fed to the model.
	SeqLen int
	// Percentiles to label (must match the model's).
	Percentiles []float64
	// Grid is the configuration sub-collection to sample from ("randomly
	// picked feature set ... chosen from the sub-collection of the whole
	// space", Section III-D).
	Grid lambda.Grid
	// Seed makes generation deterministic.
	Seed int64
	// LabelWindow extends the simulated horizon: each window is labeled by
	// simulating LabelWindow*SeqLen interarrivals starting at the window (at
	// least the window itself). A slightly longer horizon stabilizes tail
	// percentile labels.
	LabelWindow int
}

// DefaultBuildOptions returns sensible defaults for the given grid.
func DefaultBuildOptions(grid lambda.Grid) BuildOptions {
	return BuildOptions{
		NumSamples:  1500,
		SeqLen:      64,
		Percentiles: []float64{50, 75, 90, 95, 99},
		Grid:        grid,
		Seed:        1,
		// Labeling over 4x the input window stabilizes the tail-percentile
		// targets (a P95 label from one short window is dominated by its two
		// largest samples); measured on the Azure replay this cuts the
		// closed-loop VCR from ~20% to ~0% at small training budgets.
		LabelWindow: 4,
	}
}

// Build samples random windows from the trace, pairs them with random
// configurations, and labels them with the simulator. Labeling is spread
// across worker goroutines (each sample is an independent simulation).
func Build(tr *trace.Trace, sim *qsim.Simulator, opts BuildOptions) (*Dataset, error) {
	inter := tr.Interarrivals()
	if len(inter) < opts.SeqLen+1 {
		return nil, errors.New("surrogate: trace shorter than one window")
	}
	if opts.NumSamples <= 0 {
		return nil, errors.New("surrogate: NumSamples must be positive")
	}
	cfgs := opts.Grid.Configs()
	if len(cfgs) == 0 {
		return nil, errors.New("surrogate: empty configuration grid")
	}
	horizon := opts.SeqLen
	if opts.LabelWindow > 1 {
		horizon = opts.SeqLen * opts.LabelWindow
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	type job struct {
		start int
		cfg   lambda.Config
	}
	jobs := make([]job, opts.NumSamples)
	maxStart := len(inter) - horizon
	if maxStart < 1 {
		maxStart = 1
	}
	for i := range jobs {
		jobs[i] = job{
			start: rng.Intn(maxStart),
			cfg:   cfgs[rng.Intn(len(cfgs))],
		}
	}

	samples := make([]Sample, opts.NumSamples)
	errs := make([]error, opts.NumSamples)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				end := j.start + horizon
				if end > len(inter) {
					end = len(inter)
				}
				window := inter[j.start:end]
				tgt, err := sim.Evaluate(window, j.cfg, opts.Percentiles)
				if err != nil {
					errs[i] = err
					continue
				}
				samples[i] = Sample{
					Seq:    inter[j.start : j.start+opts.SeqLen],
					Config: j.cfg,
					Target: tgt.Vector(),
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Dataset{Samples: samples, Percentiles: opts.Percentiles}, nil
}

// FitNormalization computes the model's input standardization constants from
// the dataset (log-interarrival statistics and feature statistics over the
// grid) and installs them on the model. Output scales are left at their
// defaults unless the dataset suggests otherwise.
func (m *Model) FitNormalization(d *Dataset) {
	var sum, sumSq float64
	var n int
	for _, s := range d.Samples {
		for _, x := range s.Seq {
			v := logT(x)
			sum += v
			sumSq += v * v
			n++
		}
	}
	if n > 0 {
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if variance < 1e-12 {
			variance = 1e-12
		}
		m.Norm.SeqMean = mean
		m.Norm.SeqStd = math.Sqrt(variance)
	}
	var fsum, fsq [3]float64
	for _, s := range d.Samples {
		f := [3]float64{s.Config.MemoryMB, float64(s.Config.BatchSize), s.Config.TimeoutS}
		for i, v := range f {
			fsum[i] += v
			fsq[i] += v * v
		}
	}
	cnt := float64(len(d.Samples))
	if cnt > 0 {
		for i := 0; i < 3; i++ {
			mean := fsum[i] / cnt
			variance := fsq[i]/cnt - mean*mean
			if variance < 1e-12 {
				variance = 1e-12
			}
			m.Norm.FeatMean[i] = mean
			m.Norm.FeatStd[i] = math.Sqrt(variance)
		}
	}
}
