package surrogate

import (
	"testing"

	"deepbat/internal/obs"
)

// TestTrainObsBitIdentical proves the instrumentation contract: a training
// run with TrainConfig.Obs set must produce bit-identical losses and weights
// to an uninstrumented run, while the registry fills with telemetry.
func TestTrainObsBitIdentical(t *testing.T) {
	ds := synthDataset(20, 16, 7)
	const epochs = 3
	train := func(reg *obs.Registry) (*Model, *History) {
		mc := tinyModelConfig()
		mc.Dropout = 0.1
		m := NewModel(mc)
		m.FitNormalization(ds)
		tc := DefaultTrainConfig()
		tc.Epochs = epochs
		tc.Workers = 2
		tc.Obs = reg
		hist, err := m.Train(ds, ds, tc)
		if err != nil {
			t.Fatal(err)
		}
		return m, hist
	}
	mPlain, hPlain := train(nil)
	reg := obs.NewRegistry()
	mObs, hObs := train(reg)

	for e := range hPlain.TrainLoss {
		if hPlain.TrainLoss[e] != hObs.TrainLoss[e] || hPlain.ValLoss[e] != hObs.ValLoss[e] {
			t.Fatalf("epoch %d losses diverged under instrumentation", e)
		}
	}
	ps, po := mPlain.Params(), mObs.Params()
	for i := range ps {
		for j := range ps[i].Data {
			if ps[i].Data[j] != po[i].Data[j] {
				t.Fatalf("param %d element %d diverged under instrumentation", i, j)
			}
		}
	}

	ec, err := reg.Counter("surrogate_train_epochs_total", "")
	if err != nil {
		t.Fatal(err)
	}
	if ec.Value() != epochs {
		t.Fatalf("epochs counter = %v, want %d", ec.Value(), epochs)
	}
	sc, _ := reg.Counter("surrogate_train_samples_total", "")
	if sc.Value() != float64(epochs*ds.Len()) {
		t.Fatalf("samples counter = %v, want %d", sc.Value(), epochs*ds.Len())
	}
	batchesPerEpoch := (ds.Len() + 7) / 8 // default batch size 8
	bc, _ := reg.Counter("surrogate_train_batches_total", "")
	if bc.Value() != float64(epochs*batchesPerEpoch) {
		t.Fatalf("batches counter = %v, want %d", bc.Value(), epochs*batchesPerEpoch)
	}
	gh, err := reg.Histogram("surrogate_grad_norm", "", gradNormBuckets())
	if err != nil {
		t.Fatal(err)
	}
	if gh.Count() != uint64(epochs*batchesPerEpoch) {
		t.Fatalf("grad-norm observations = %d, want %d", gh.Count(), epochs*batchesPerEpoch)
	}
	if gh.Sum() <= 0 {
		t.Fatal("grad norms were not positive")
	}
	lg, _ := reg.Gauge("surrogate_train_loss", "")
	if lg.Value() != hObs.TrainLoss[epochs-1] {
		t.Fatalf("loss gauge = %v, want %v", lg.Value(), hObs.TrainLoss[epochs-1])
	}
	vg, _ := reg.Gauge("surrogate_val_loss", "")
	if vg.Value() != hObs.ValLoss[epochs-1] {
		t.Fatalf("val-loss gauge = %v, want %v", vg.Value(), hObs.ValLoss[epochs-1])
	}
	wg, _ := reg.Gauge("surrogate_train_workers", "")
	if wg.Value() != 2 {
		t.Fatalf("workers gauge = %v, want 2", wg.Value())
	}
	ug, _ := reg.Gauge("surrogate_worker_utilization", "")
	if ug.Value() <= 0 || ug.Value() > 1 {
		t.Fatalf("utilization gauge = %v, want in (0, 1]", ug.Value())
	}
}

// TestTrainObsGradNormWithoutClipping covers the ClipNorm == 0 path, where
// the norm is computed purely for telemetry.
func TestTrainObsGradNormWithoutClipping(t *testing.T) {
	ds := synthDataset(8, 16, 3)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	tc.ClipNorm = 0
	reg := obs.NewRegistry()
	tc.Obs = reg
	if _, err := m.Train(ds, nil, tc); err != nil {
		t.Fatal(err)
	}
	gh, err := reg.Histogram("surrogate_grad_norm", "", gradNormBuckets())
	if err != nil {
		t.Fatal(err)
	}
	if gh.Count() == 0 || gh.Sum() <= 0 {
		t.Fatalf("grad-norm histogram empty without clipping: count=%d sum=%v", gh.Count(), gh.Sum())
	}
}

// TestTrainObsRegistryCollision: a colliding injected registry must fail the
// Train call with an error, never a panic.
func TestTrainObsRegistryCollision(t *testing.T) {
	ds := synthDataset(8, 16, 3)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	reg := obs.NewRegistry()
	if _, err := reg.Counter("surrogate_train_loss", "wrong kind"); err != nil {
		t.Fatal(err)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	tc.Obs = reg
	if _, err := m.Train(ds, nil, tc); err == nil {
		t.Fatal("Train accepted a registry with a colliding metric name")
	}
}
