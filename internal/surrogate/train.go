package surrogate

import (
	"errors"
	"math/rand"

	"deepbat/internal/loss"
	"deepbat/internal/opt"
	"deepbat/internal/stats"
	"deepbat/internal/tensor"
)

// TrainConfig holds the optimization hyperparameters. The paper trains for
// 100 epochs with batch size 8, Adam at lr 1e-3, and the combined loss with
// alpha = 0.05.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Loss      loss.Config
	// SLO drives the violation-penalty weighting of the loss.
	SLO float64
	// ClipNorm bounds the global gradient norm (0 disables clipping).
	ClipNorm float64
	// Seed shuffles minibatches deterministically.
	Seed int64
	// Quiet suppresses the per-epoch Progress callback.
	Progress func(epoch int, trainLoss, valLoss float64)
}

// DefaultTrainConfig returns the paper's training settings (with fewer
// epochs than the paper's 100 — the loss plateaus by ~50 there and much
// earlier at our dataset sizes).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:    30,
		BatchSize: 8,
		LR:        0.001,
		Loss:      loss.Default(),
		SLO:       0.1,
		ClipNorm:  5,
		Seed:      1,
	}
}

// FineTuneConfig returns the lighter schedule used to adapt a pre-trained
// model to an out-of-distribution workload (Section III-D, Model
// Fine-Tuning): fewer epochs at a reduced learning rate.
func FineTuneConfig() TrainConfig {
	c := DefaultTrainConfig()
	c.Epochs = 8
	c.LR = 0.0005
	return c
}

// History records per-epoch training and validation losses.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
}

// scaleTarget converts a physical target vector into the model's normalized
// output space.
func (m *Model) scaleTarget(target []float64) []float64 {
	out := make([]float64, len(target))
	for i, v := range target {
		out[i] = v / m.Norm.OutScale[i]
	}
	return out
}

// sampleLoss builds the scalar loss tensor for one sample: the combined
// Huber+MAPE loss with violating latency entries up-weighted, and the whole
// sample scaled by the SLO penalty when its configuration violates.
func (m *Model) sampleLoss(s Sample, cfg TrainConfig) *tensor.Tensor {
	pred := m.Forward(s.Seq, s.Config)
	target := tensor.FromData(m.scaleTarget(s.Target), len(s.Target))
	weights := loss.SLOWeights(s.Target, cfg.SLO, cfg.Loss)
	flat := tensor.Reshape(pred, len(s.Target))
	l := loss.Combined(flat, target, cfg.Loss, weights)
	if w := loss.SampleWeight(s.Target, cfg.SLO, cfg.Loss); w != 1 {
		l = tensor.Scale(l, w)
	}
	return l
}

// Train fits the model on train, reporting validation loss on val (which may
// be nil or empty). Normalization must already be fitted (FitNormalization).
func (m *Model) Train(train, val *Dataset, cfg TrainConfig) (*History, error) {
	if train == nil || train.Len() == 0 {
		return nil, errors.New("surrogate: empty training set")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Params()
	optim := opt.NewAdam(params, cfg.LR)
	hist := &History{}
	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}
	m.SetTrain(true)
	defer m.SetTrain(false)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			optim.ZeroGrad()
			var batchLoss float64
			scale := 1 / float64(end-start)
			for _, idx := range order[start:end] {
				l := tensor.Scale(m.sampleLoss(train.Samples[idx], cfg), scale)
				tensor.Backward(l)
				batchLoss += l.Item()
			}
			if cfg.ClipNorm > 0 {
				opt.ClipGradNorm(params, cfg.ClipNorm)
			}
			optim.Step()
			epochLoss += batchLoss
			batches++
		}
		epochLoss /= float64(batches)
		valLoss := 0.0
		if val != nil && val.Len() > 0 {
			m.SetTrain(false)
			valLoss = m.EvalLoss(val, cfg)
			m.SetTrain(true)
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		hist.ValLoss = append(hist.ValLoss, valLoss)
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss, valLoss)
		}
	}
	return hist, nil
}

// FineTune adapts the model to a new workload with the fine-tuning schedule,
// keeping the existing normalization (the paper fine-tunes the pre-trained
// weights on a small portion of the new OOD data).
func (m *Model) FineTune(data *Dataset, cfg TrainConfig) (*History, error) {
	return m.Train(data, nil, cfg)
}

// EvalLoss computes the mean combined loss over a dataset without updating
// parameters.
func (m *Model) EvalLoss(d *Dataset, cfg TrainConfig) float64 {
	if d.Len() == 0 {
		return 0
	}
	var total float64
	for _, s := range d.Samples {
		total += m.sampleLoss(s, cfg).Item()
	}
	return total / float64(d.Len())
}

// EvalMAPE returns the mean absolute percentage error (percent) of the
// model's physical-unit predictions across every output of every sample.
func (m *Model) EvalMAPE(d *Dataset) float64 {
	var preds, truths []float64
	for _, s := range d.Samples {
		p := m.Predict(s.Seq, s.Config)
		preds = append(preds, p.CostPerRequest)
		truths = append(truths, s.Target[0])
		for i, v := range p.Percentiles {
			preds = append(preds, v)
			truths = append(truths, s.Target[i+1])
		}
	}
	return stats.MAPE(preds, truths)
}

// LatencyMAPE is EvalMAPE restricted to the latency percentile outputs
// (the paper reports latency prediction MAPE in Fig. 13).
func (m *Model) LatencyMAPE(d *Dataset) float64 {
	var preds, truths []float64
	for _, s := range d.Samples {
		p := m.Predict(s.Seq, s.Config)
		for i, v := range p.Percentiles {
			preds = append(preds, v)
			truths = append(truths, s.Target[i+1])
		}
	}
	return stats.MAPE(preds, truths)
}

// UnderpredictionQuantile returns the q-quantile (q in [0,1]) of the
// relative underprediction max(0, (truth - pred)/truth) of the latency
// percentile pct across a dataset. It is the dataset form of the paper's
// penalty factor gamma: tightening the SLO by this amount shields the
// optimizer from the winner's curse of picking configurations whose tail the
// model happens to underpredict. pct must be one of the model's percentile
// levels; unknown levels return 0.
func (m *Model) UnderpredictionQuantile(d *Dataset, pct, q float64) float64 {
	idx := -1
	for i, lv := range m.Cfg.Percentiles {
		if lv == pct {
			idx = i
			break
		}
	}
	if idx < 0 || d.Len() == 0 {
		return 0
	}
	under := make([]float64, 0, d.Len())
	for _, s := range d.Samples {
		truth := s.Target[idx+1]
		if truth <= 0 {
			continue
		}
		pred := m.Predict(s.Seq, s.Config).Percentiles[idx]
		u := (truth - pred) / truth
		if u < 0 {
			u = 0
		}
		under = append(under, u)
	}
	if len(under) == 0 {
		return 0
	}
	v, err := stats.Percentile(under, q*100)
	if err != nil {
		return 0
	}
	return v
}

// PenaltyGamma returns the paper's robustness penalty factor
// gamma = |P_hat - P| / P between a predicted and a simulated ground-truth
// percentile, used to tighten the SLO during optimization for unseen arrival
// processes.
func PenaltyGamma(predicted, groundTruth float64) float64 {
	if groundTruth == 0 {
		return 0
	}
	g := (predicted - groundTruth) / groundTruth
	if g < 0 {
		g = -g
	}
	return g
}
