package surrogate

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"

	"deepbat/internal/lambda"
	"deepbat/internal/loss"
	"deepbat/internal/obs"
	"deepbat/internal/opt"
	"deepbat/internal/stats"
	"deepbat/internal/tensor"
)

// TrainConfig holds the optimization hyperparameters. The paper trains for
// 100 epochs with batch size 8, Adam at lr 1e-3, and the combined loss with
// alpha = 0.05.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Loss      loss.Config
	// SLO drives the violation-penalty weighting of the loss.
	SLO float64
	// ClipNorm bounds the global gradient norm (0 disables clipping).
	ClipNorm float64
	// Seed shuffles minibatches deterministically.
	Seed int64
	// Workers is the number of goroutines sharding each minibatch
	// (0 = GOMAXPROCS). Training is bit-deterministic for a fixed Seed
	// regardless of the worker count: every sample's gradient lands in its
	// own buffer and buffers are reduced in sample order, and dropout masks
	// are seeded per (epoch, sample position), never per worker.
	Workers int
	// Quiet suppresses the per-epoch Progress callback.
	Progress func(epoch int, trainLoss, valLoss float64)
	// Obs, when non-nil, receives training telemetry: per-epoch loss and
	// validation-loss gauges, a per-batch pre-clip gradient-norm histogram,
	// and worker-count/utilization gauges. Instrumentation only reads
	// training state, so results are bit-identical with Obs nil or set.
	Obs *obs.Registry
}

// DefaultTrainConfig returns the paper's training settings (with fewer
// epochs than the paper's 100 — the loss plateaus by ~50 there and much
// earlier at our dataset sizes).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:    30,
		BatchSize: 8,
		LR:        0.001,
		Loss:      loss.Default(),
		SLO:       0.1,
		ClipNorm:  5,
		Seed:      1,
	}
}

// FineTuneConfig returns the lighter schedule used to adapt a pre-trained
// model to an out-of-distribution workload (Section III-D, Model
// Fine-Tuning): fewer epochs at a reduced learning rate.
func FineTuneConfig() TrainConfig {
	c := DefaultTrainConfig()
	c.Epochs = 8
	c.LR = 0.0005
	return c
}

// History records per-epoch training and validation losses.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
}

// scaleTarget converts a physical target vector into the model's normalized
// output space.
func (m *Model) scaleTarget(target []float64) []float64 {
	out := make([]float64, len(target))
	for i, v := range target {
		out[i] = v / m.Norm.OutScale[i]
	}
	return out
}

// sampleLoss builds the scalar loss tensor for one sample: the combined
// Huber+MAPE loss with violating latency entries up-weighted, and the whole
// sample scaled by the SLO penalty when its configuration violates.
func (m *Model) sampleLoss(s Sample, cfg TrainConfig) *tensor.Tensor {
	pred := m.Forward(s.Seq, s.Config)
	target := tensor.FromData(m.scaleTarget(s.Target), len(s.Target))
	weights := loss.SLOWeights(s.Target, cfg.SLO, cfg.Loss)
	flat := tensor.Reshape(pred, len(s.Target))
	l := loss.Combined(flat, target, cfg.Loss, weights)
	//lint:allow floatcompare SampleWeight returns the literal 1.0 for unpenalized samples; bit equality skips a no-op Scale
	if w := loss.SampleWeight(s.Target, cfg.SLO, cfg.Loss); w != 1 {
		l = tensor.Scale(l, w)
	}
	return l
}

// sampleSeed derives the dropout seed of the sample at shuffled position pos
// of the given epoch (splitmix64-style mixing). The seed depends only on
// (base seed, epoch, position), never on the worker that runs the sample, so
// serial and parallel training draw identical dropout masks.
func sampleSeed(base int64, epoch, pos int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15*uint64(epoch+1) ^ 0xd1342543de82ef95*uint64(pos+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// trainWorkers resolves the effective worker count for one minibatch.
func trainWorkers(cfgWorkers, batch int) int {
	w := cfgWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > batch {
		w = batch
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Train fits the model on train, reporting validation loss on val (which may
// be nil or empty). Normalization must already be fitted (FitNormalization).
//
// The samples of each minibatch are independent, so they are sharded across
// cfg.Workers goroutines. Each worker drives its own weight-sharing replica
// of the model (tensor.ShareData: one set of weights, per-replica gradient
// storage) and writes every sample's gradient into that sample's own
// opt.GradBuffer. After the workers join, the buffers are reduced into the
// optimizer's parameters in sample order, clipped, and stepped — so the
// update is bit-identical for any worker count.
func (m *Model) Train(train, val *Dataset, cfg TrainConfig) (*History, error) {
	if train == nil || train.Len() == 0 {
		return nil, errors.New("surrogate: empty training set")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Params()
	optim := opt.NewAdam(params, cfg.LR)
	met, err := newTrainMetrics(cfg.Obs)
	if err != nil {
		return nil, err
	}
	hist := &History{}
	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}

	workers := trainWorkers(cfg.Workers, cfg.BatchSize)
	reps := make([]*Model, workers)
	repParams := make([][]*tensor.Tensor, workers)
	for w := range reps {
		reps[w] = m.replica()
		reps[w].SetTrain(true)
		repParams[w] = reps[w].Params()
	}
	// One gradient shard and loss slot per batch position, reused across
	// batches.
	bufs := make([]*opt.GradBuffer, cfg.BatchSize)
	for i := range bufs {
		bufs[i] = opt.NewGradBuffer(params)
	}
	losses := make([]float64, cfg.BatchSize)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var batches int
		var usedSlots, capSlots float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			bs := end - start
			scale := 1 / float64(bs)
			runShard := func(w, lo, hi int) {
				rep := reps[w]
				for p := lo; p < hi; p++ {
					if rep.Cfg.Dropout > 0 {
						rep.setDropoutRNG(rand.New(rand.NewSource(sampleSeed(cfg.Seed, epoch, start+p))))
					}
					buf := bufs[p]
					buf.Zero()
					buf.Bind(repParams[w])
					l := tensor.Scale(rep.sampleLoss(train.Samples[order[start+p]], cfg), scale)
					tensor.Backward(l)
					losses[p] = l.Item()
				}
			}
			bw := workers
			if bw > bs {
				bw = bs
			}
			if met != nil {
				shard := (bs + bw - 1) / bw
				usedSlots += float64(bs)
				capSlots += float64(bw * shard)
			}
			if bw <= 1 {
				runShard(0, 0, bs)
			} else {
				var wg sync.WaitGroup
				chunk := (bs + bw - 1) / bw
				for w := 0; w < bw; w++ {
					lo := w * chunk
					hi := lo + chunk
					if hi > bs {
						hi = bs
					}
					if lo >= hi {
						break
					}
					wg.Add(1)
					go func(w, lo, hi int) {
						defer wg.Done()
						runShard(w, lo, hi)
					}(w, lo, hi)
				}
				wg.Wait()
			}
			// Deterministic reduction: sample order, independent of which
			// worker produced each shard.
			optim.ZeroGrad()
			var batchLoss float64
			for p := 0; p < bs; p++ {
				bufs[p].AddInto(params)
				batchLoss += losses[p]
			}
			if cfg.ClipNorm > 0 {
				met.observeBatch(params, opt.ClipGradNorm(params, cfg.ClipNorm), true)
			} else {
				met.observeBatch(params, 0, false)
			}
			optim.Step()
			epochLoss += batchLoss
			batches++
		}
		epochLoss /= float64(batches)
		valLoss := 0.0
		if val != nil && val.Len() > 0 {
			valLoss = m.EvalLoss(val, cfg)
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		hist.ValLoss = append(hist.ValLoss, valLoss)
		met.observeEpoch(len(order), epochLoss, valLoss, workers, usedSlots, capSlots)
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss, valLoss)
		}
	}
	return hist, nil
}

// FineTune adapts the model to a new workload with the fine-tuning schedule,
// keeping the existing normalization (the paper fine-tunes the pre-trained
// weights on a small portion of the new OOD data).
func (m *Model) FineTune(data *Dataset, cfg TrainConfig) (*History, error) {
	return m.Train(data, nil, cfg)
}

// forwardRows encodes every sample of d concurrently (sequence encodes are
// independent), stacks the encodings and standardized feature rows, and runs
// one batched head pass, returning the (N × OutputDim) scaled output matrix.
// The result is owned by gridScratch; the caller must Put it back. Row i is
// bit-identical to Forward(d.Samples[i]). Must run inside tensor.NoGrad.
func (m *Model) forwardRows(d *Dataset) *tensor.Tensor {
	n, dim := d.Len(), m.Cfg.EmbedDim
	e1Rows := gridScratch.Get(n, dim)
	feats := gridScratch.Get(n, 3)
	parallelFor(n, func(i int) {
		s := d.Samples[i]
		e := m.EncodeSequence(s.Seq)
		copy(e1Rows.Data[i*dim:(i+1)*dim], e.Data)
		m.normalizeFeaturesRow(feats.Data[i*3:(i+1)*3], s.Config)
	})
	out := m.headForwardBatch(&gridScratch, e1Rows, feats)
	gridScratch.Put(e1Rows, feats)
	return out
}

// EvalLoss computes the mean combined loss over a dataset without updating
// parameters. The pass is tape-free and batched (one head GEMM for the whole
// dataset); per-sample losses are reduced in sample order, so the result is
// deterministic and bit-identical to the per-sample evaluation it replaced.
//
//deepbat:nograd
func (m *Model) EvalLoss(d *Dataset, cfg TrainConfig) float64 {
	if d.Len() == 0 {
		return 0
	}
	var total float64
	tensor.NoGrad(func() {
		out := m.forwardRows(d)
		w := m.Cfg.OutputDim()
		for i, s := range d.Samples {
			pred := tensor.FromData(out.Data[i*w:(i+1)*w], w)
			target := tensor.FromData(m.scaleTarget(s.Target), len(s.Target))
			weights := loss.SLOWeights(s.Target, cfg.SLO, cfg.Loss)
			l := loss.Combined(pred, target, cfg.Loss, weights)
			//lint:allow floatcompare SampleWeight returns the literal 1.0 for unpenalized samples; bit equality skips a no-op Scale
			if wgt := loss.SampleWeight(s.Target, cfg.SLO, cfg.Loss); wgt != 1 {
				l = tensor.Scale(l, wgt)
			}
			total += l.Item()
		}
		gridScratch.Put(out)
	})
	return total / float64(d.Len())
}

// predictAll runs tape-free batched predictions for every sample, returning
// them in sample order.
//
//deepbat:nograd
func (m *Model) predictAll(d *Dataset) []Prediction {
	preds := make([]Prediction, d.Len())
	if d.Len() == 0 {
		return preds
	}
	tensor.NoGrad(func() {
		out := m.forwardRows(d)
		cfgs := make([]lambda.Config, d.Len())
		for i, s := range d.Samples {
			cfgs[i] = s.Config
		}
		m.decodeRows(out, cfgs, preds)
		gridScratch.Put(out)
	})
	return preds
}

// EvalMAPE returns the mean absolute percentage error (percent) of the
// model's physical-unit predictions across every output of every sample.
//
//deepbat:nograd
func (m *Model) EvalMAPE(d *Dataset) float64 {
	all := m.predictAll(d)
	var preds, truths []float64
	for i, s := range d.Samples {
		p := all[i]
		preds = append(preds, p.CostPerRequest)
		truths = append(truths, s.Target[0])
		for j, v := range p.Percentiles {
			preds = append(preds, v)
			truths = append(truths, s.Target[j+1])
		}
	}
	return stats.MAPE(preds, truths)
}

// LatencyMAPE is EvalMAPE restricted to the latency percentile outputs
// (the paper reports latency prediction MAPE in Fig. 13).
//
//deepbat:nograd
func (m *Model) LatencyMAPE(d *Dataset) float64 {
	all := m.predictAll(d)
	var preds, truths []float64
	for i, s := range d.Samples {
		for j, v := range all[i].Percentiles {
			preds = append(preds, v)
			truths = append(truths, s.Target[j+1])
		}
	}
	return stats.MAPE(preds, truths)
}

// UnderpredictionQuantile returns the q-quantile (q in [0,1]) of the
// relative underprediction max(0, (truth - pred)/truth) of the latency
// percentile pct across a dataset. It is the dataset form of the paper's
// penalty factor gamma: tightening the SLO by this amount shields the
// optimizer from the winner's curse of picking configurations whose tail the
// model happens to underpredict. pct must be one of the model's percentile
// levels; unknown levels return 0.
//
//deepbat:nograd
func (m *Model) UnderpredictionQuantile(d *Dataset, pct, q float64) float64 {
	idx := -1
	for i, lv := range m.Cfg.Percentiles {
		if stats.ApproxEqual(lv, pct, stats.PercentileLevelTol) {
			idx = i
			break
		}
	}
	if idx < 0 || d.Len() == 0 {
		return 0
	}
	all := m.predictAll(d)
	under := make([]float64, 0, d.Len())
	for i, s := range d.Samples {
		truth := s.Target[idx+1]
		if truth <= 0 {
			continue
		}
		pred := all[i].Percentiles[idx]
		u := (truth - pred) / truth
		if u < 0 {
			u = 0
		}
		under = append(under, u)
	}
	if len(under) == 0 {
		return 0
	}
	v, err := stats.Percentile(under, q*100)
	if err != nil {
		return 0
	}
	return v
}

// PenaltyGamma returns the paper's robustness penalty factor
// gamma = |P_hat - P| / P between a predicted and a simulated ground-truth
// percentile, used to tighten the SLO during optimization for unseen arrival
// processes.
func PenaltyGamma(predicted, groundTruth float64) float64 {
	if groundTruth == 0 {
		return 0
	}
	g := (predicted - groundTruth) / groundTruth
	if g < 0 {
		g = -g
	}
	return g
}
