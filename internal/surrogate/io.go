package surrogate

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the gob-serializable form of a model.
type snapshot struct {
	Cfg    ModelConfig
	Norm   Normalization
	Gamma  float64
	Params [][]float64
}

// Save writes the model (architecture, normalization, weights) to w.
func (m *Model) Save(w io.Writer) error {
	s := snapshot{Cfg: m.Cfg, Norm: m.Norm, Gamma: m.GammaHint}
	for _, p := range m.Params() {
		s.Params = append(s.Params, append([]float64(nil), p.Data...))
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("surrogate: decode model: %w", err)
	}
	m := NewModel(s.Cfg)
	m.Norm = s.Norm
	m.GammaHint = s.Gamma
	params := m.Params()
	if len(params) != len(s.Params) {
		return nil, fmt.Errorf("surrogate: snapshot has %d tensors, model needs %d",
			len(s.Params), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(s.Params[i]) {
			return nil, fmt.Errorf("surrogate: tensor %d size mismatch (%d vs %d)",
				i, len(s.Params[i]), len(p.Data))
		}
		copy(p.Data, s.Params[i])
	}
	return m, nil
}

// SaveFile writes the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
