package surrogate

import (
	"deepbat/internal/obs"
	"deepbat/internal/opt"
	"deepbat/internal/tensor"
)

// trainMetrics holds the series Train maintains when TrainConfig.Obs is set.
// All registration is error-returning (never Must*) so an injected registry
// with colliding names fails the Train call instead of panicking mid-run.
type trainMetrics struct {
	epochs   *obs.Counter
	batches  *obs.Counter
	samples  *obs.Counter
	loss     *obs.Gauge
	valLoss  *obs.Gauge
	gradLast *obs.Gauge
	gradNorm *obs.Histogram
	workers  *obs.Gauge
	util     *obs.Gauge
}

// gradNormBuckets spans the gradient magnitudes seen across a training run:
// from near-converged (1e-3) to the pre-clip spikes of the first epochs.
func gradNormBuckets() []float64 { return obs.LogBuckets(0.001, 100, 2) }

func newTrainMetrics(reg *obs.Registry) (*trainMetrics, error) {
	if reg == nil {
		return nil, nil
	}
	m := &trainMetrics{}
	var err error
	register := func(dst **obs.Counter, name, help string) {
		if err == nil {
			*dst, err = reg.Counter(name, help)
		}
	}
	gauge := func(dst **obs.Gauge, name, help string) {
		if err == nil {
			*dst, err = reg.Gauge(name, help)
		}
	}
	register(&m.epochs, "surrogate_train_epochs_total", "completed training epochs")
	register(&m.batches, "surrogate_train_batches_total", "optimizer steps taken")
	register(&m.samples, "surrogate_train_samples_total", "training samples consumed")
	gauge(&m.loss, "surrogate_train_loss", "mean combined loss of the last epoch")
	gauge(&m.valLoss, "surrogate_val_loss", "validation loss after the last epoch")
	gauge(&m.gradLast, "surrogate_grad_norm_last", "pre-clip global gradient L2 norm of the last batch")
	gauge(&m.workers, "surrogate_train_workers", "effective data-parallel worker count")
	gauge(&m.util, "surrogate_worker_utilization", "mean fraction of worker shard slots filled over the last epoch")
	if err == nil {
		m.gradNorm, err = reg.Histogram("surrogate_grad_norm",
			"pre-clip global gradient L2 norm per batch", gradNormBuckets())
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// observeBatch records the gradient norm of one optimizer step. When clipping
// is disabled the norm is not otherwise computed, so it is derived here; the
// gradients are read, never modified, keeping training bit-identical with and
// without instrumentation.
func (m *trainMetrics) observeBatch(params []*tensor.Tensor, preClipNorm float64, clipped bool) {
	if m == nil {
		return
	}
	norm := preClipNorm
	if !clipped {
		norm = opt.GradNorm(params)
	}
	m.batches.Inc()
	m.gradNorm.Observe(norm)
	m.gradLast.Set(norm)
}

// observeEpoch records the per-epoch loss gauges and worker-utilization
// figures. used/capacity are the filled and total shard slots summed over the
// epoch's batches (capacity = workers x chunk per batch), so a ragged final
// batch shows up as utilization below 1.
func (m *trainMetrics) observeEpoch(samples int, trainLoss, valLoss float64, workers int, used, capacity float64) {
	if m == nil {
		return
	}
	m.epochs.Inc()
	m.samples.Add(float64(samples))
	m.loss.Set(trainLoss)
	m.valLoss.Set(valLoss)
	m.workers.Set(float64(workers))
	if capacity > 0 {
		m.util.Set(used / capacity)
	}
}
