// Package surrogate implements the DeepBAT deep surrogate model (Fig. 3 of
// the paper): a Transformer encoder over the arrival interarrival sequence,
// mean pooling followed by an extra multi-head self-attention refinement,
// a feed-forward branch for the candidate configuration features (memory,
// batch size, timeout), and a feed-forward output head that predicts the
// per-request cost together with a vector of latency percentiles.
//
// The package also provides ground-truth dataset generation from the
// discrete-event simulator, the paper's training loop (Adam, combined
// Huber+MAPE loss with SLO-violation penalty), fine-tuning for
// out-of-distribution workloads, and an encode-once, row-batched fast path
// for grid inference: the sequence is encoded a single time, all candidate
// feature rows are stacked into one matrix, and the feature branch and
// output head run as row-batched GEMMs against a broadcast of the shared
// encoding (see DESIGN.md, "Batched inference & kernel blocking").
//
// Training is data-parallel: the samples of each minibatch are sharded
// across workers running weight-sharing model replicas, and the per-sample
// gradients are reduced in a fixed sample order, so training is
// bit-deterministic for a given seed regardless of the worker count.
// Inference entry points (Predict, PredictGrid, EvalLoss, EvalMAPE) run
// inside tensor.NoGrad — no autograd tape or gradient buffers are allocated
// — encode independent sequences across goroutines, and share one batched
// head pass. The rows of a matrix product are computed independently with a
// fixed summation order, so batched outputs are bit-identical to the
// per-candidate Predict path.
package surrogate

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"deepbat/internal/lambda"
	"deepbat/internal/nn"
	"deepbat/internal/stats"
	"deepbat/internal/tensor"
)

// ModelConfig holds the architecture hyperparameters. The paper's settings
// are 2 encoder layers, embedding dimension 16, feed-forward width 32, ReLU,
// and sequence length 256.
type ModelConfig struct {
	SeqLen        int
	EmbedDim      int
	FFHidden      int
	EncoderLayers int
	Heads         int
	Dropout       float64
	// Percentiles are the latency percentiles predicted alongside the cost.
	Percentiles []float64
	Seed        int64
	// DisablePostAttention ablates the Eq. 4 refinement: the pooled sequence
	// vector is used directly instead of passing through the extra
	// multi-head attention block. For the paper's architecture leave false.
	DisablePostAttention bool
}

// DefaultModelConfig returns the paper's architecture. SeqLen defaults to 64
// (the paper's own sensitivity analysis, Fig. 15a, shows the accuracy/time
// trade-off across {128, 256, 512, 1024}; a shorter default keeps CPU
// training fast and can be raised freely).
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		SeqLen:        64,
		EmbedDim:      16,
		FFHidden:      32,
		EncoderLayers: 2,
		Heads:         2,
		Dropout:       0.05,
		Percentiles:   []float64{50, 75, 90, 95, 99},
		Seed:          1,
	}
}

// OutputDim returns the width of the prediction vector: cost plus the
// percentile list.
func (c ModelConfig) OutputDim() int { return 1 + len(c.Percentiles) }

// Normalization holds the input/output standardization constants fitted on
// the training set ("Standardize" in Eq. 5 of the paper).
type Normalization struct {
	// Interarrival times are log-transformed then standardized.
	SeqMean, SeqStd float64
	// Feature standardization for (M, B, T).
	FeatMean, FeatStd [3]float64
	// Output scaling: targets are divided by these before the loss so every
	// output is O(1). Cost (USD ~1e-6) needs a large scale-up.
	OutScale []float64
}

// Model is the DeepBAT deep surrogate.
type Model struct {
	Cfg  ModelConfig
	Norm Normalization
	// GammaHint is the robustness penalty factor calibrated alongside the
	// weights (the validation-set underprediction quantile); consumers
	// should install it on their optimizer. It travels with Save/Load.
	GammaHint float64

	embed   *nn.Linear // 1 -> d (Eq. 1)
	pos     *nn.PositionalEncoding
	enc     *nn.Encoder            // Eq. 2
	postAtt *nn.MultiHeadAttention // Eq. 4, refinement of the pooled vector
	featFF  *nn.FeedForward        // Eq. 5
	outFF   *nn.FeedForward        // Eq. 6
}

// NewModel builds a model with freshly initialized parameters.
func NewModel(cfg ModelConfig) *Model {
	if cfg.SeqLen <= 0 || cfg.EmbedDim <= 0 || cfg.OutputDim() <= 1 {
		panic(fmt.Sprintf("surrogate: bad model config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EmbedDim
	m := &Model{
		Cfg:     cfg,
		embed:   nn.NewLinear(rng, 1, d),
		pos:     nn.NewPositionalEncoding(maxSeqLen(cfg.SeqLen), d),
		enc:     nn.NewEncoder(rng, cfg.EncoderLayers, d, cfg.FFHidden, cfg.Heads, cfg.Dropout),
		postAtt: nn.NewMultiHeadAttention(rng, d, cfg.Heads),
		featFF:  nn.NewFeedForward(rng, 3, cfg.FFHidden, d),
		outFF:   nn.NewFeedForward(rng, 2*d, cfg.FFHidden, cfg.OutputDim()),
	}
	m.Norm = Normalization{
		SeqStd:   1,
		FeatStd:  [3]float64{1, 1, 1},
		OutScale: defaultOutScale(cfg.OutputDim()),
	}
	return m
}

func maxSeqLen(l int) int {
	if l < 1024 {
		return 1024
	}
	return l
}

func defaultOutScale(dim int) []float64 {
	s := make([]float64, dim)
	s[0] = 1e-6 // cost in USD is predicted in micro-USD units
	for i := 1; i < dim; i++ {
		s[i] = 0.1 // latencies predicted in 100 ms units
	}
	return s
}

// Params returns every learnable tensor.
func (m *Model) Params() []*tensor.Tensor {
	return nn.CollectParams(m.embed, m.enc, m.postAtt, m.featFF, m.outFF)
}

// replica returns a model whose parameter tensors alias m's weights (updates
// through the optimizer are immediately visible) but own private gradient
// buffers and private dropout/attention scratch state. Params() of the
// replica is index-aligned with m.Params(). The positional table is constant
// and shared.
func (m *Model) replica() *Model {
	return &Model{
		Cfg:       m.Cfg,
		Norm:      m.Norm,
		GammaHint: m.GammaHint,
		embed:     m.embed.Replicate(),
		pos:       m.pos,
		enc:       m.enc.Replicate(),
		postAtt:   m.postAtt.Replicate(),
		featFF:    m.featFF.Replicate(),
		outFF:     m.outFF.Replicate(),
	}
}

// setDropoutRNG installs one shared random stream on every dropout layer of
// the model (only the encoder layers carry dropout).
func (m *Model) setDropoutRNG(rng *rand.Rand) { m.enc.SetDropoutRNG(rng) }

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m) }

// SetTrain toggles dropout.
func (m *Model) SetTrain(train bool) { m.enc.SetTrain(train) }

// normalizeSeq log-transforms and standardizes an interarrival window into a
// column tensor of shape (l, 1).
func (m *Model) normalizeSeq(seq []float64) *tensor.Tensor {
	data := make([]float64, len(seq))
	for i, x := range seq {
		data[i] = (logT(x) - m.Norm.SeqMean) / nonzero(m.Norm.SeqStd)
	}
	return tensor.FromData(data, len(seq), 1)
}

// logT is the log transform applied to interarrival times, guarded against
// zero gaps (simultaneous arrivals).
func logT(x float64) float64 {
	const eps = 1e-7
	if x < eps {
		x = eps
	}
	return math.Log(x)
}

func nonzero(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

// normalizeFeatures standardizes (M, B, T) into a (1, 3) tensor.
func (m *Model) normalizeFeatures(cfg lambda.Config) *tensor.Tensor {
	data := make([]float64, 3)
	m.normalizeFeaturesRow(data, cfg)
	return tensor.FromData(data, 1, 3)
}

// normalizeFeaturesRow writes the standardized (M, B, T) row of cfg into dst
// (length 3), the row layout consumed by the batched feature branch.
func (m *Model) normalizeFeaturesRow(dst []float64, cfg lambda.Config) {
	raw := [3]float64{cfg.MemoryMB, float64(cfg.BatchSize), cfg.TimeoutS}
	for i, x := range raw {
		dst[i] = (x - m.Norm.FeatMean[i]) / nonzero(m.Norm.FeatStd[i])
	}
}

// EncodeSequence runs the sequence branch: embedding, positional encoding,
// Transformer encoder, mean pooling, and the post-pooling multi-head
// attention (E1 of Eq. 4). The returned (1, d) tensor stays on the tape, so
// it can be reused for training or detached for fast grid inference.
func (m *Model) EncodeSequence(seq []float64) *tensor.Tensor {
	if len(seq) == 0 {
		panic("surrogate: empty sequence")
	}
	x := m.normalizeSeq(seq)
	e := m.embed.Forward(x)  // (l, d), Eq. 1
	e = m.pos.Forward(e)     // + positional encoding
	e = m.enc.Forward(e)     // Eq. 2
	ep := tensor.MeanRows(e) // mean pooling -> (1, d)
	if m.Cfg.DisablePostAttention {
		return ep
	}
	return m.postAtt.Forward(ep, ep, ep, nil) // Eq. 4
}

// headForward combines an encoded sequence with a candidate configuration
// and produces the scaled output vector (still on the tape).
func (m *Model) headForward(e1 *tensor.Tensor, cfg lambda.Config) *tensor.Tensor {
	e2 := m.featFF.Forward(m.normalizeFeatures(cfg))  // Eq. 5
	return m.outFF.Forward(tensor.ConcatCols(e1, e2)) // Eq. 6
}

// gridScratch recycles the intermediate matrices of batched head passes
// across sweeps; a steady-state grid sweep allocates O(1) tensors instead of
// O(K). Safe for concurrent sweeps (sync.Pool underneath).
var gridScratch tensor.ScratchPool

// headForwardBatch is the row-batched headForward: e1Rows (n × d) holds one
// sequence encoding per row and feats (n × 3) one standardized candidate
// row, and the result (n × OutputDim) stacks the scaled output vectors. The
// rows of a matrix product are computed independently with the same
// fixed-order summation, so row i is bit-identical to
// headForward(e1Rows[i], cfg[i]) — pinned by TestPredictGridMatchesPredict.
// The returned tensor is owned by pool; the caller must Put it back.
// NoGrad only.
//
//deepbat:nograd
func (m *Model) headForwardBatch(pool *tensor.ScratchPool, e1Rows, feats *tensor.Tensor) *tensor.Tensor {
	n, d := feats.Rows(), m.Cfg.EmbedDim
	e2 := m.featFF.ForwardScratch(pool, feats) // Eq. 5, all rows at once
	cat := pool.Get(n, 2*d)                    // rows [e1_i | e2_i], as ConcatCols builds them
	for i := 0; i < n; i++ {
		copy(cat.Data[i*2*d:i*2*d+d], e1Rows.Data[i*d:(i+1)*d])
		copy(cat.Data[i*2*d+d:(i+1)*2*d], e2.Data[i*d:(i+1)*d])
	}
	pool.Put(e2)
	out := m.outFF.ForwardScratch(pool, cat) // Eq. 6, all rows at once
	pool.Put(cat)
	return out
}

// Forward runs the full model and returns the scaled (normalized-space)
// output tensor; used by the training loop.
func (m *Model) Forward(seq []float64, cfg lambda.Config) *tensor.Tensor {
	return m.headForward(m.EncodeSequence(seq), cfg)
}

// Prediction is a de-normalized model output.
type Prediction struct {
	Config         lambda.Config
	CostPerRequest float64
	// Percentiles holds the predicted latency percentiles in the order of
	// ModelConfig.Percentiles.
	Percentiles []float64
}

// Percentile returns the prediction for the given percentile level, which
// must be one of the model's configured levels.
func (p Prediction) Percentile(cfg ModelConfig, pct float64) (float64, bool) {
	for i, q := range cfg.Percentiles {
		if stats.ApproxEqual(q, pct, stats.PercentileLevelTol) {
			return p.Percentiles[i], true
		}
	}
	return 0, false
}

// decode maps a scaled output vector back to physical units. Predicted
// percentiles are projected onto the monotone cone (cumulative max): the
// levels are ascending, so a non-monotone raw output is necessarily an
// estimation artifact that would mislead the SLO constraint check.
func (m *Model) decode(out []float64, cfg lambda.Config) Prediction {
	return m.decodeInto(out, cfg, make([]float64, len(m.Cfg.Percentiles)))
}

// decodeInto is decode writing the percentile vector into a caller-supplied
// slice, so a batched decode can back every prediction of a sweep with one
// shared allocation.
func (m *Model) decodeInto(out []float64, cfg lambda.Config, percs []float64) Prediction {
	p := Prediction{Config: cfg, Percentiles: percs}
	p.CostPerRequest = out[0] * m.Norm.OutScale[0]
	prev := math.Inf(-1)
	for i := range p.Percentiles {
		v := out[i+1] * m.Norm.OutScale[i+1]
		if v < prev {
			v = prev
		}
		p.Percentiles[i] = v
		prev = v
	}
	return p
}

// decodeRows decodes row i of the (n × OutputDim) scaled output matrix into
// dst[i], with all percentile slices carved from one backing allocation.
func (m *Model) decodeRows(out *tensor.Tensor, cfgs []lambda.Config, dst []Prediction) {
	w := m.Cfg.OutputDim()
	np := len(m.Cfg.Percentiles)
	backing := make([]float64, len(cfgs)*np)
	for i, cfg := range cfgs {
		dst[i] = m.decodeInto(out.Data[i*w:(i+1)*w], cfg, backing[i*np:(i+1)*np:(i+1)*np])
	}
}

// Predict runs one sequence/configuration pair and returns physical-unit
// predictions. It runs tape-free: inference never backpropagates, so no
// autograd state is allocated.
//
//deepbat:nograd
func (m *Model) Predict(seq []float64, cfg lambda.Config) Prediction {
	var p Prediction
	tensor.NoGrad(func() {
		out := m.Forward(seq, cfg)
		p = m.decode(out.Data, cfg)
	})
	return p
}

// PredictGrid encodes the sequence once and evaluates every candidate
// configuration against the shared encoding — the fast path that lets
// DeepBAT sweep the whole grid in milliseconds (Section III-D/IV-F). The
// sweep runs tape-free and row-batched: all K candidate feature rows are
// stacked into one (K, 3) matrix, the feature branch and output head run as
// row-batched GEMMs against a broadcast of the shared encoding, and all K
// predictions decode from one output matrix. Intermediates come from a
// scratch pool, so a steady-state sweep allocates O(1) tensors instead of
// O(K). Each output row is bit-identical to the per-candidate Predict path.
//
//deepbat:nograd
func (m *Model) PredictGrid(seq []float64, cfgs []lambda.Config) []Prediction {
	out := make([]Prediction, len(cfgs))
	if len(cfgs) == 0 {
		return out
	}
	tensor.NoGrad(func() {
		e1 := m.EncodeSequence(seq)
		k, d := len(cfgs), m.Cfg.EmbedDim
		e1Rows := gridScratch.Get(k, d)
		feats := gridScratch.Get(k, 3)
		for i, cfg := range cfgs {
			copy(e1Rows.Data[i*d:(i+1)*d], e1.Data)
			m.normalizeFeaturesRow(feats.Data[i*3:(i+1)*3], cfg)
		}
		o := m.headForwardBatch(&gridScratch, e1Rows, feats)
		gridScratch.Put(e1Rows, feats)
		m.decodeRows(o, cfgs, out)
		gridScratch.Put(o)
	})
	return out
}

// parallelFor runs fn(i) for every i in [0, n) across GOMAXPROCS contiguous
// chunks. fn must only write state owned by index i. With a single processor
// (or n <= 1) it degenerates to a plain loop with no goroutine overhead.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// AttentionScores runs the sequence branch and returns, per sequence
// position, the aggregate attention received in the first encoder layer
// (averaged over heads and query positions, normalized to sum to 1). This is
// the quantity visualized in Fig. 14 of the paper.
//
// The pass runs tape-free — visualization never backpropagates, and the old
// grad-mode forward built (and leaked) a full autograd tape per call. Score
// capture mutates the attention module, so AttentionScores must not run
// concurrently with itself or other forwards on the same model.
//
//deepbat:nograd
func (m *Model) AttentionScores(seq []float64) []float64 {
	agg := make([]float64, len(seq))
	tensor.NoGrad(func() {
		att := m.enc.Layers[0].Att
		att.SetCaptureScores(true)
		defer att.SetCaptureScores(false)
		m.EncodeSequence(seq)
		for _, h := range att.LastScores() {
			for r := 0; r < h.Rows(); r++ {
				for c := 0; c < h.Cols(); c++ {
					agg[c] += h.At(r, c)
				}
			}
		}
	})
	total := 0.0
	for _, v := range agg {
		total += v
	}
	if total > 0 {
		for i := range agg {
			agg[i] /= total
		}
	}
	return agg
}
