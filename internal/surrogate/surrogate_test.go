package surrogate

import (
	"bytes"
	"math"
	"testing"

	"deepbat/internal/lambda"
	"deepbat/internal/qsim"
	"deepbat/internal/trace"
)

// tinyModelConfig keeps unit tests fast.
func tinyModelConfig() ModelConfig {
	cfg := DefaultModelConfig()
	cfg.SeqLen = 16
	cfg.Dropout = 0
	return cfg
}

func tinyGrid() lambda.Grid {
	return lambda.Grid{
		Memories:  []float64{1024, 2048},
		Batches:   []int{1, 4, 8},
		TimeoutsS: []float64{0.02, 0.08},
	}
}

// tinyDataset builds a small labeled dataset from the twitter trace.
func tinyDataset(t *testing.T, n, seqLen int) *Dataset {
	t.Helper()
	spec := trace.Spec{Name: "twitter", Hours: 2, HourSeconds: 60, Seed: 3}
	tr := trace.MustGenerate(spec)
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	opts := DefaultBuildOptions(tinyGrid())
	opts.NumSamples = n
	opts.SeqLen = seqLen
	ds, err := Build(tr, sim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewModelParams(t *testing.T) {
	m := NewModel(tinyModelConfig())
	if m.NumParams() == 0 {
		t.Fatal("model has no parameters")
	}
	if got := m.Cfg.OutputDim(); got != 6 {
		t.Fatalf("OutputDim = %d, want 6 (cost + 5 percentiles)", got)
	}
}

func TestPredictShapesAndDeterminism(t *testing.T) {
	m := NewModel(tinyModelConfig())
	seq := make([]float64, 16)
	for i := range seq {
		seq[i] = 0.01 * float64(i+1)
	}
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}
	p1 := m.Predict(seq, cfg)
	p2 := m.Predict(seq, cfg)
	if p1.CostPerRequest != p2.CostPerRequest {
		t.Fatal("prediction not deterministic in eval mode")
	}
	if len(p1.Percentiles) != 5 {
		t.Fatalf("percentile vector length = %d", len(p1.Percentiles))
	}
	if v, ok := p1.Percentile(m.Cfg, 95); !ok || v != p1.Percentiles[3] {
		t.Fatalf("Percentile lookup broken: %v %v", v, ok)
	}
	if _, ok := p1.Percentile(m.Cfg, 42); ok {
		t.Fatal("unknown percentile should not resolve")
	}
}

func TestPredictGridMatchesPredict(t *testing.T) {
	m := NewModel(tinyModelConfig())
	seq := make([]float64, 16)
	for i := range seq {
		seq[i] = 0.005 + 0.001*float64(i%7)
	}
	cfgs := tinyGrid().Configs()
	grid := m.PredictGrid(seq, cfgs)
	if len(grid) != len(cfgs) {
		t.Fatalf("PredictGrid returned %d of %d", len(grid), len(cfgs))
	}
	for i, cfg := range cfgs {
		single := m.Predict(seq, cfg)
		if math.Abs(grid[i].CostPerRequest-single.CostPerRequest) > 1e-12 {
			t.Fatalf("cfg %v: grid cost %v vs single %v", cfg, grid[i].CostPerRequest, single.CostPerRequest)
		}
		for j := range single.Percentiles {
			if math.Abs(grid[i].Percentiles[j]-single.Percentiles[j]) > 1e-12 {
				t.Fatalf("cfg %v percentile %d mismatch", cfg, j)
			}
		}
	}
}

func TestBuildDataset(t *testing.T) {
	ds := tinyDataset(t, 50, 16)
	if ds.Len() != 50 {
		t.Fatalf("dataset size = %d", ds.Len())
	}
	for _, s := range ds.Samples {
		if len(s.Seq) != 16 {
			t.Fatalf("sample seq length = %d", len(s.Seq))
		}
		if len(s.Target) != 6 {
			t.Fatalf("target length = %d", len(s.Target))
		}
		if s.Target[0] <= 0 {
			t.Fatal("cost target must be positive")
		}
		for i := 2; i < len(s.Target); i++ {
			if s.Target[i] < s.Target[i-1]-1e-12 {
				t.Fatalf("percentile targets not monotone: %v", s.Target)
			}
		}
	}
	train, val := ds.Split(0.2)
	if train.Len()+val.Len() != 50 || val.Len() != 10 {
		t.Fatalf("split sizes %d/%d", train.Len(), val.Len())
	}
}

func TestBuildErrors(t *testing.T) {
	spec := trace.Spec{Name: "twitter", Hours: 1, HourSeconds: 5, Seed: 3}
	tr := trace.MustGenerate(spec)
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	opts := DefaultBuildOptions(tinyGrid())
	opts.SeqLen = 1 << 30
	if _, err := Build(tr, sim, opts); err == nil {
		t.Fatal("expected error for oversized window")
	}
	opts = DefaultBuildOptions(lambda.Grid{})
	opts.SeqLen = 8
	if _, err := Build(tr, sim, opts); err == nil {
		t.Fatal("expected error for empty grid")
	}
	opts = DefaultBuildOptions(tinyGrid())
	opts.SeqLen = 8
	opts.NumSamples = 0
	if _, err := Build(tr, sim, opts); err == nil {
		t.Fatal("expected error for zero samples")
	}
}

func TestFitNormalization(t *testing.T) {
	ds := tinyDataset(t, 60, 16)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	if m.Norm.SeqStd <= 0 || m.Norm.SeqMean == 0 {
		t.Fatalf("sequence normalization not fitted: %+v", m.Norm)
	}
	for i := 0; i < 3; i++ {
		if m.Norm.FeatStd[i] <= 0 {
			t.Fatalf("feature std %d not fitted", i)
		}
	}
	// Normalized features should be O(1).
	x := m.normalizeFeatures(lambda.Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05})
	for _, v := range x.Data {
		if math.Abs(v) > 5 {
			t.Fatalf("normalized feature %v too large", v)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	ds := tinyDataset(t, 160, 16)
	train, val := ds.Split(0.2)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(train)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	hist, err := m.Train(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.TrainLoss) != 10 {
		t.Fatalf("history length = %d", len(hist.TrainLoss))
	}
	first, last := hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1]
	if last >= first*0.8 {
		t.Fatalf("training loss did not fall: %v -> %v", first, last)
	}
	// The trained model should beat an untrained one on validation MAPE.
	fresh := NewModel(tinyModelConfig())
	fresh.FitNormalization(train)
	if m.EvalMAPE(val) >= fresh.EvalMAPE(val) {
		t.Fatalf("trained MAPE %v not better than untrained %v", m.EvalMAPE(val), fresh.EvalMAPE(val))
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	m := NewModel(tinyModelConfig())
	if _, err := m.Train(&Dataset{}, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestFineTuneRuns(t *testing.T) {
	ds := tinyDataset(t, 80, 16)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := m.Train(ds, nil, cfg); err != nil {
		t.Fatal(err)
	}
	before := m.EvalLoss(ds, cfg)
	ft := FineTuneConfig()
	ft.Epochs = 3
	if _, err := m.FineTune(ds, ft); err != nil {
		t.Fatal(err)
	}
	after := m.EvalLoss(ds, ft)
	if after > before*1.1 {
		t.Fatalf("fine-tuning hurt in-distribution loss: %v -> %v", before, after)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := tinyDataset(t, 40, 16)
	m := NewModel(tinyModelConfig())
	m.FitNormalization(ds)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	if _, err := m.Train(ds, nil, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Samples[0]
	p1 := m.Predict(s.Seq, s.Config)
	p2 := loaded.Predict(s.Seq, s.Config)
	if math.Abs(p1.CostPerRequest-p2.CostPerRequest) > 1e-12 {
		t.Fatalf("loaded model predicts differently: %v vs %v", p1.CostPerRequest, p2.CostPerRequest)
	}
	for i := range p1.Percentiles {
		if math.Abs(p1.Percentiles[i]-p2.Percentiles[i]) > 1e-12 {
			t.Fatal("loaded percentiles differ")
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestAttentionScores(t *testing.T) {
	m := NewModel(tinyModelConfig())
	seq := make([]float64, 16)
	for i := range seq {
		seq[i] = 0.01
	}
	seq[10] = 2.0 // a long gap
	scores := m.AttentionScores(seq)
	if len(scores) != 16 {
		t.Fatalf("scores length = %d", len(scores))
	}
	sum := 0.0
	for _, v := range scores {
		if v < 0 {
			t.Fatalf("negative attention score %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
}

func TestPenaltyGamma(t *testing.T) {
	if g := PenaltyGamma(0.11, 0.1); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("gamma = %v, want 0.1", g)
	}
	if g := PenaltyGamma(0.09, 0.1); math.Abs(g-0.1) > 1e-9 {
		t.Fatalf("gamma = %v, want 0.1 (absolute)", g)
	}
	if PenaltyGamma(1, 0) != 0 {
		t.Fatal("gamma with zero truth should be 0")
	}
}

func TestEvalMAPEEmptyDataset(t *testing.T) {
	m := NewModel(tinyModelConfig())
	if got := m.EvalMAPE(&Dataset{}); got != 0 {
		t.Fatalf("EvalMAPE(empty) = %v", got)
	}
	if got := m.EvalLoss(&Dataset{}, DefaultTrainConfig()); got != 0 {
		t.Fatalf("EvalLoss(empty) = %v", got)
	}
}

func TestDecodeEnforcesMonotonePercentiles(t *testing.T) {
	m := NewModel(tinyModelConfig())
	// Raw output with a dip at P95 (scaled space).
	raw := []float64{1, 0.1, 0.3, 0.9, 0.5, 1.2}
	p := m.decode(raw, lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0})
	for i := 1; i < len(p.Percentiles); i++ {
		if p.Percentiles[i] < p.Percentiles[i-1] {
			t.Fatalf("percentiles not monotone: %v", p.Percentiles)
		}
	}
	// The dip is lifted to the running max.
	if p.Percentiles[3] != p.Percentiles[2] {
		t.Fatalf("dip not projected: %v", p.Percentiles)
	}
}

func TestScaleTargetRoundTrip(t *testing.T) {
	m := NewModel(tinyModelConfig())
	target := []float64{2e-6, 0.01, 0.02, 0.03, 0.05, 0.08}
	scaled := m.scaleTarget(target)
	// Cost scaled to ~2, latencies to ~0.1-0.8: all O(1).
	for i, v := range scaled {
		if math.Abs(v) > 10 {
			t.Fatalf("scaled target[%d] = %v not O(1)", i, v)
		}
	}
	back := m.decode(scaled, lambda.Config{MemoryMB: 1024, BatchSize: 1, TimeoutS: 0})
	if math.Abs(back.CostPerRequest-target[0]) > 1e-18 {
		t.Fatalf("decode(scale) cost = %v", back.CostPerRequest)
	}
	for i := range back.Percentiles {
		if math.Abs(back.Percentiles[i]-target[i+1]) > 1e-15 {
			t.Fatalf("decode(scale) pct %d = %v", i, back.Percentiles[i])
		}
	}
}
