module deepbat

go 1.22
