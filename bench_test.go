// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one Benchmark per artifact, backed by internal/experiments at
// the quick lab scale) plus micro-benchmarks of the substrate kernels. Run:
//
//	go test -bench=. -benchmem
//
// The first figure benchmark to run pays for pre-training the shared lab's
// surrogate; subsequent ones reuse the cached model and replays.
package deepbat_test

import (
	"math/rand"
	"sync"
	"testing"

	"deepbat"
	"deepbat/internal/arrival"
	"deepbat/internal/batchopt"
	"deepbat/internal/experiments"
	"deepbat/internal/lambda"
	"deepbat/internal/nn"
	"deepbat/internal/qsim"
	"deepbat/internal/tensor"
	"deepbat/internal/trace"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.QuickLabConfig())
	})
	return benchLab
}

// benchExperiment runs one experiment per iteration (cached state in the
// shared lab makes iterations after the first cheap).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(lab(), id)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkFig1Sweeps(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig4ArrivalRates(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5IDC(b *testing.B)           { benchExperiment(b, "fig5") }
func BenchmarkFig6AzureCost(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7Alibaba(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8VCRAlibaba(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9Synthetic(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10VCRSynthetic(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11Configs(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12SLOSweep(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13CDFs(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14Attention(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15aSeqLen(b *testing.B)      { benchExperiment(b, "fig15a") }
func BenchmarkFig15bLayers(b *testing.B)      { benchExperiment(b, "fig15b") }
func BenchmarkTimingSpeedup(b *testing.B)     { benchExperiment(b, "timing") }
func BenchmarkAblations(b *testing.B)         { benchExperiment(b, "ablations") }

// --- substrate micro-benchmarks ---

func BenchmarkTensorMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 64, 64)
	y := tensor.Randn(rng, 1, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkTensorMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 256, 256)
	y := tensor.Randn(rng, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkEncoderForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	enc := nn.NewEncoder(rng, 2, 16, 32, 2, 0)
	x := tensor.Randn(rng, 1, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Forward(x)
	}
}

func BenchmarkEncoderTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	enc := nn.NewEncoder(rng, 2, 16, 32, 2, 0)
	x := tensor.Randn(rng, 1, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := enc.Forward(x)
		loss := tensor.SumAll(tensor.Mul(y, y))
		tensor.Backward(loss)
		for _, p := range enc.Params() {
			p.ZeroGrad()
		}
	}
}

// benchTrainDataset fabricates a labeled dataset directly so the training
// benchmarks measure the optimizer loop, not the simulator.
func benchTrainDataset(n, seqLen int) *deepbat.Dataset {
	rng := rand.New(rand.NewSource(7))
	cfgs := deepbat.DefaultGrid().Configs()
	pcts := []float64{50, 75, 90, 95, 99}
	ds := &deepbat.Dataset{Percentiles: pcts}
	for i := 0; i < n; i++ {
		seq := make([]float64, seqLen)
		for j := range seq {
			seq[j] = 0.005 + 0.01*rng.Float64()
		}
		target := make([]float64, 1+len(pcts))
		target[0] = 2e-6
		base := 0.02
		for j := 1; j < len(target); j++ {
			base += 0.01 * rng.Float64()
			target[j] = base
		}
		ds.Samples = append(ds.Samples, deepbat.Sample{
			Seq: seq, Config: cfgs[rng.Intn(len(cfgs))], Target: target,
		})
	}
	return ds
}

// benchTrainEpoch measures one full training epoch (forward + backward +
// Adam) over a 64-sample synthetic dataset with the given worker count
// (0 = GOMAXPROCS). Comparing the Serial and Parallel variants shows the
// data-parallel minibatch speedup on multi-core machines.
func benchTrainEpoch(b *testing.B, workers int) {
	b.Helper()
	ds := benchTrainDataset(64, 32)
	mc := deepbat.DefaultOptions().Model
	mc.SeqLen = 32
	tc := deepbat.DefaultOptions().Train
	tc.Epochs = 1
	tc.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := deepbat.NewModel(mc)
		m.FitNormalization(ds)
		b.StartTimer()
		if _, err := m.Train(ds, nil, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochSerial(b *testing.B)   { benchTrainEpoch(b, 1) }
func BenchmarkTrainEpochParallel(b *testing.B) { benchTrainEpoch(b, 0) }

func BenchmarkQsimRun(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g, err := arrival.NewGen(arrival.Poisson(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	ts := g.SampleUntil(60)
	sim := qsim.New(lambda.DefaultProfile(), lambda.DefaultPricing())
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(ts, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ts)), "requests/op")
}

func BenchmarkBatchAnalyze(b *testing.B) {
	m := arrival.MMPP2(150, 20, 1, 0.8)
	a := batchopt.NewAnalyzer(lambda.DefaultProfile(), lambda.DefaultPricing())
	cfg := lambda.Config{MemoryMB: 2048, BatchSize: 8, TimeoutS: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMAPSample(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := arrival.NewGen(arrival.MMPP2(100, 5, 0.5, 0.5), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkFitMMPP2(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, err := arrival.NewGen(arrival.MMPP2(100, 5, 0.2, 0.2), rng)
	if err != nil {
		b.Fatal(err)
	}
	xs := g.Sample(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arrival.FitMMPP2(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace.MustGenerate(trace.Spec{Name: "synthetic", Hours: 2, HourSeconds: 30, Seed: int64(i + 1)})
	}
}

// BenchmarkDecide measures one full DeepBAT decision (encode the window once
// + score the whole grid) on the shared lab's pre-trained model — the
// "milliseconds for identifying the configuration" path of Section IV-F.
func BenchmarkDecide(b *testing.B) {
	sys, err := lab().BaseSystem()
	if err != nil {
		b.Fatal(err)
	}
	inter := lab().Trace("azure").Interarrivals()
	window := inter[:sys.Model.Cfg.SeqLen]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Decide(window); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBATCHDecide measures one full BATCH decision (MAP fit + solving
// the analytical model for every grid configuration) for comparison against
// BenchmarkDecide — this pair reproduces the Section IV-F speedup.
func BenchmarkBATCHDecide(b *testing.B) {
	inter := lab().Trace("azure").Interarrivals()
	window := inter[:2000]
	pl := batchopt.NewPipeline(lambda.DefaultProfile(), lambda.DefaultPricing(),
		lab().Cfg.Grid, lab().Cfg.SLO)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Decide(window); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridPredict isolates the encode-once fast path: scoring the full
// candidate grid against a pre-encoded sequence.
func BenchmarkGridPredict(b *testing.B) {
	sys, err := lab().BaseSystem()
	if err != nil {
		b.Fatal(err)
	}
	inter := lab().Trace("azure").Interarrivals()
	window := inter[:sys.Model.Cfg.SeqLen]
	cfgs := deepbat.DefaultGrid().Configs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Model.PredictGrid(window, cfgs)
	}
}
