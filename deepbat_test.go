package deepbat

import (
	"path/filepath"
	"testing"
)

// fastOptions shrinks everything for test speed.
func fastOptions() Options {
	opts := DefaultOptions()
	opts.Model.SeqLen = 16
	opts.Model.Dropout = 0
	opts.DatasetSamples = 120
	opts.Train.Epochs = 6
	opts.Grid = Grid{
		Memories:  []float64{1024, 2048},
		Batches:   []int{1, 4, 8},
		TimeoutsS: []float64{0.02, 0.08},
	}
	return opts
}

func fastTrace(t *testing.T, name string, hours int) *Trace {
	t.Helper()
	tr, err := GenerateTrace(TraceSpec{Name: name, Hours: hours, HourSeconds: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func trainFast(t *testing.T) *System {
	t.Helper()
	sys, err := Train(fastTrace(t, "twitter", 2), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTraceNames(t *testing.T) {
	if len(TraceNames()) != 4 {
		t.Fatalf("TraceNames = %v", TraceNames())
	}
}

func TestTrainAndDecide(t *testing.T) {
	sys := trainFast(t)
	window := make([]float64, 16)
	for i := range window {
		window[i] = 0.01
	}
	dec, err := sys.Decide(window)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Config.Valid() {
		t.Fatalf("decision config %v invalid", dec.Config)
	}
	if dec.Evaluated != sys.Opts.Grid.Size() {
		t.Fatalf("evaluated %d configs", dec.Evaluated)
	}
}

func TestSystemReplayWithAllDeciders(t *testing.T) {
	sys := trainFast(t)
	tr := fastTrace(t, "twitter", 1)
	opts := ReplayOptions{
		PeriodS:       10,
		DecideEvery:   1,
		LookbackS:     30,
		InitialConfig: Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           0.1,
	}
	for _, dec := range []Decider{
		sys.Decider(),
		sys.Oracle(),
		sys.Static(opts.InitialConfig),
	} {
		res, err := sys.Replay(tr.Timestamps, dec, opts)
		if err != nil {
			t.Fatalf("%s: %v", dec.Name(), err)
		}
		if len(res.Latencies()) != len(tr.Timestamps) {
			t.Fatalf("%s served %d of %d", dec.Name(), len(res.Latencies()), len(tr.Timestamps))
		}
	}
}

func TestSystemReplayBATCH(t *testing.T) {
	if testing.Short() {
		t.Skip("BATCH analytic replay is slow")
	}
	sys := trainFast(t)
	tr := fastTrace(t, "twitter", 1)
	opts := ReplayOptions{
		PeriodS:       10,
		DecideEvery:   1,
		LookbackS:     30,
		InitialConfig: Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           0.1,
	}
	res, err := sys.Replay(tr.Timestamps, sys.BATCHBaseline(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 {
		t.Fatal("BATCH made no decisions")
	}
}

func TestFineTune(t *testing.T) {
	sys := trainFast(t)
	ood := fastTrace(t, "synthetic", 1)
	if err := sys.FineTune(ood, 40); err != nil {
		t.Fatal(err)
	}
}

func TestFrameworkIntegration(t *testing.T) {
	sys := trainFast(t)
	tr := fastTrace(t, "twitter", 1)
	fw, err := sys.NewFramework(Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	fw.DecidePeriodS = 10
	fw.Run(tr.Timestamps)
	if len(fw.Records) != len(tr.Timestamps) {
		t.Fatalf("framework served %d of %d", len(fw.Records), len(tr.Timestamps))
	}
	if fw.Reconfigurations == 0 {
		t.Fatal("framework never reconfigured")
	}
}

func TestSaveLoadSystem(t *testing.T) {
	sys := trainFast(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := sys.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(path, sys.Opts)
	if err != nil {
		t.Fatal(err)
	}
	window := make([]float64, 16)
	for i := range window {
		window[i] = 0.02
	}
	d1, err := sys.Decide(window)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.Decide(window)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Config != d2.Config {
		t.Fatalf("loaded system decided %v, original %v", d2.Config, d1.Config)
	}
}

func TestLoadSystemMissingFile(t *testing.T) {
	if _, err := LoadSystem("/nonexistent/model.gob", DefaultOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestCalibrateGamma(t *testing.T) {
	sys := trainFast(t)
	tr := fastTrace(t, "synthetic", 1)
	inter := tr.Interarrivals()
	probe := Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05}
	g, err := sys.CalibrateGamma(inter, probe)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 || g > 0.5 {
		t.Fatalf("gamma = %v, want within [0, 0.5]", g)
	}
	if sys.Optimizer.Gamma != g {
		t.Fatal("gamma not installed on the optimizer")
	}
	if _, err := sys.CalibrateGamma(inter[:4], probe); err == nil {
		t.Fatal("expected error for short window")
	}
}

// TestHeadlineClaim asserts the paper's central result end-to-end at test
// scale: against the same workload, DeepBAT (1) keeps SLO violations at or
// below those of an aggressive cheap static configuration, and (2) serves
// cheaper than a conservative always-safe static configuration.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end replay is slow")
	}
	day := fastTrace(t, "azure", 4)
	opts := fastOptions()
	opts.DatasetSamples = 300
	opts.Train.Epochs = 10
	sys, err := Train(day.FirstHours(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	serve := day.LastHours(2)
	ro := ReplayOptions{
		PeriodS:       5,
		DecideEvery:   1,
		LookbackS:     30,
		InitialConfig: Config{MemoryMB: 2048, BatchSize: 4, TimeoutS: 0.05},
		SLO:           0.1,
	}
	deep, err := sys.Replay(serve.Timestamps, sys.Decider(), ro)
	if err != nil {
		t.Fatal(err)
	}
	// Aggressive static: maximal batching at low memory — cheap but slow.
	cheap, err := sys.Replay(serve.Timestamps,
		sys.Static(Config{MemoryMB: 1024, BatchSize: 8, TimeoutS: 0.1}), ro)
	if err != nil {
		t.Fatal(err)
	}
	// Conservative static: no batching at high memory — safe but expensive.
	safe, err := sys.Replay(serve.Timestamps,
		sys.Static(Config{MemoryMB: 4096, BatchSize: 1, TimeoutS: 0}), ro)
	if err != nil {
		t.Fatal(err)
	}
	if deep.VCR() > cheap.VCR()+1 {
		t.Fatalf("DeepBAT VCR %.2f%% worse than aggressive static %.2f%%", deep.VCR(), cheap.VCR())
	}
	if deep.CostPerRequest() >= safe.CostPerRequest() {
		t.Fatalf("DeepBAT cost %v not below conservative static %v",
			deep.CostPerRequest(), safe.CostPerRequest())
	}
	if deep.VCR() > 10 {
		t.Fatalf("DeepBAT VCR %.2f%% too high in-distribution", deep.VCR())
	}
}

func TestSetGamma(t *testing.T) {
	sys := trainFast(t)
	sys.SetGamma(0.2)
	window := make([]float64, 16)
	for i := range window {
		window[i] = 0.01
	}
	dec, err := sys.Decide(window)
	if err != nil {
		t.Fatal(err)
	}
	if dec.EffectiveSLO >= sys.Opts.SLO {
		t.Fatalf("gamma did not tighten SLO: %v", dec.EffectiveSLO)
	}
}
