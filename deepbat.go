// Package deepbat is the public API of this reproduction of "DeepBAT:
// Performance and Cost Optimization of Serverless Inference Using
// Transformers" (Sun, Pinciroli, Casale, Smirni — IPDPS 2025).
//
// DeepBAT is an SLO-aware controller for serverless ML inference. It watches
// a short window of request interarrival times, asks a Transformer-based
// deep surrogate model to predict the per-request cost and latency
// percentiles of every candidate configuration (memory size M, batch size B,
// batch timeout T), and picks the cheapest configuration whose predicted
// tail latency meets the SLO.
//
// The typical flow is:
//
//	tr, _ := deepbat.GenerateTrace(deepbat.TraceSpec{Name: "azure", Hours: 12, HourSeconds: 60, Seed: 1})
//	sys, _ := deepbat.Train(tr, deepbat.DefaultOptions())
//	dec, _ := sys.Decide(window)           // one optimized configuration
//	res, _ := sys.Replay(ts, opts)         // closed-loop trace replay
//
// Everything underneath — the tensor autograd engine, the Transformer
// encoder, the MAP workload machinery, the discrete-event Lambda simulator,
// and the BATCH analytical baseline — is implemented in this module's
// internal packages with the standard library only.
package deepbat

import (
	"errors"
	"fmt"

	"deepbat/internal/batchopt"
	"deepbat/internal/core"
	"deepbat/internal/lambda"
	"deepbat/internal/optimizer"
	"deepbat/internal/qsim"
	"deepbat/internal/surrogate"
	"deepbat/internal/trace"
)

// Re-exported core types, so downstream users never import internal paths.
type (
	// Config is one serverless configuration (M, B, T).
	Config = lambda.Config
	// Grid is the candidate configuration space.
	Grid = lambda.Grid
	// Profile is a deterministic service-time profile of one model class.
	Profile = lambda.Profile
	// Pricing is the AWS Lambda cost model.
	Pricing = lambda.Pricing
	// Model is the Transformer deep surrogate.
	Model = surrogate.Model
	// ModelConfig holds the surrogate architecture hyperparameters.
	ModelConfig = surrogate.ModelConfig
	// TrainConfig holds the training hyperparameters.
	TrainConfig = surrogate.TrainConfig
	// Dataset is a labeled (window, configuration) -> target set.
	Dataset = surrogate.Dataset
	// Sample is one supervised training example: an interarrival window, a
	// candidate configuration, and its ground-truth target vector.
	Sample = surrogate.Sample
	// Decision is the outcome of one optimization.
	Decision = optimizer.Decision
	// Prediction is a de-normalized surrogate output.
	Prediction = surrogate.Prediction
	// TraceSpec configures workload synthesis.
	TraceSpec = trace.Spec
	// Trace is a synthesized workload.
	Trace = trace.Trace
	// RatePoint is one sample of a trace's arrival-rate series.
	RatePoint = trace.RatePoint
	// ReplayOptions controls closed-loop trace replay.
	ReplayOptions = core.ReplayOptions
	// ReplayResult aggregates a closed-loop replay.
	ReplayResult = core.ReplayResult
	// Framework is the Fig. 2 event-driven request/control pipeline.
	Framework = core.Framework
	// Decider selects configurations at control points.
	Decider = core.Decider
)

// TraceNames lists the built-in workload generators
// (azure, twitter, alibaba, synthetic).
func TraceNames() []string { return trace.Names() }

// GenerateTrace synthesizes one of the built-in workloads.
func GenerateTrace(spec TraceSpec) (*Trace, error) { return trace.Generate(spec) }

// DefaultGrid returns the evaluation's candidate configuration space.
func DefaultGrid() Grid { return lambda.DefaultGrid() }

// DefaultProfile returns the NLP inference service-time profile.
func DefaultProfile() Profile { return lambda.DefaultProfile() }

// DefaultPricing returns current AWS Lambda pricing (1 ms billing).
func DefaultPricing() Pricing { return lambda.DefaultPricing() }

// Options bundles everything needed to build a System.
type Options struct {
	Profile Profile
	Pricing Pricing
	Grid    Grid
	// SLO is the latency objective in seconds on the tail percentile.
	SLO float64
	// Pct is the constrained percentile (default 95).
	Pct float64
	// Model configures the surrogate architecture.
	Model ModelConfig
	// Train configures pre-training.
	Train TrainConfig
	// DatasetSamples is the number of labeled samples generated for
	// pre-training.
	DatasetSamples int
	// Seed drives dataset sampling.
	Seed int64
}

// DefaultOptions returns the paper's evaluation setup: SLO 0.1 s on the 95th
// percentile over the default grid.
func DefaultOptions() Options {
	return Options{
		Profile:        lambda.DefaultProfile(),
		Pricing:        lambda.DefaultPricing(),
		Grid:           lambda.DefaultGrid(),
		SLO:            0.1,
		Pct:            95,
		Model:          surrogate.DefaultModelConfig(),
		Train:          surrogate.DefaultTrainConfig(),
		DatasetSamples: 1500,
		Seed:           1,
	}
}

// System is a ready-to-serve DeepBAT instance: a trained surrogate plus the
// optimizer, simulator, and baselines configured consistently.
type System struct {
	Opts      Options
	Model     *Model
	Optimizer *optimizer.Optimizer
	Simulator *qsim.Simulator
}

// NewModel builds a fresh (untrained) surrogate with the given architecture.
// Fit normalization and train it yourself (Model.FitNormalization,
// Model.Train) when constructing datasets outside BuildDataset; Train
// shards each minibatch across TrainConfig.Workers goroutines (0 =
// GOMAXPROCS) with bit-deterministic results for a fixed seed.
func NewModel(cfg ModelConfig) *Model { return surrogate.NewModel(cfg) }

// NewSystem wraps an existing (e.g. loaded) model.
func NewSystem(m *Model, opts Options) *System {
	if opts.Pct == 0 {
		opts.Pct = 95
	}
	opt := optimizer.New(m, opts.Grid, opts.SLO)
	opt.Pct = opts.Pct
	opt.Gamma = m.GammaHint
	return &System{
		Opts:      opts,
		Model:     m,
		Optimizer: opt,
		Simulator: qsim.New(opts.Profile, opts.Pricing),
	}
}

// BuildDataset labels (window, configuration) pairs from the trace with the
// ground-truth simulator.
func BuildDataset(tr *Trace, opts Options) (*Dataset, error) {
	sim := qsim.New(opts.Profile, opts.Pricing)
	b := surrogate.DefaultBuildOptions(opts.Grid)
	b.NumSamples = opts.DatasetSamples
	b.SeqLen = opts.Model.SeqLen
	b.Percentiles = opts.Model.Percentiles
	b.Seed = opts.Seed
	return surrogate.Build(tr, sim, b)
}

// Train builds a training dataset from the trace, fits normalization, trains
// a fresh surrogate, and returns the assembled System.
func Train(tr *Trace, opts Options) (*System, error) {
	ds, err := BuildDataset(tr, opts)
	if err != nil {
		return nil, fmt.Errorf("deepbat: build dataset: %w", err)
	}
	train, val := ds.Split(0.1)
	m := surrogate.NewModel(opts.Model)
	m.FitNormalization(train)
	tc := opts.Train
	tc.SLO = opts.SLO
	if _, err := m.Train(train, val, tc); err != nil {
		return nil, fmt.Errorf("deepbat: train: %w", err)
	}
	sys := NewSystem(m, opts)
	// Install the robustness penalty gamma from the validation split: the
	// 90th-percentile relative underprediction of the constrained tail.
	// Without it the optimizer suffers a winner's curse — among many
	// near-boundary candidates it picks exactly the ones whose tail the
	// model underestimates. SetGamma(0) disables the margin.
	if val.Len() > 0 {
		g := m.UnderpredictionQuantile(val, sys.Opts.Pct, 0.9)
		if g > 0.5 {
			g = 0.5
		}
		m.GammaHint = g
		sys.SetGamma(g)
	}
	return sys, nil
}

// FineTune adapts the system's model to an out-of-distribution workload
// using samples labeled from the given trace (typically its first hour), as
// in Section III-D of the paper.
func (s *System) FineTune(tr *Trace, samples int) error {
	opts := s.Opts
	opts.DatasetSamples = samples
	opts.Seed++
	ds, err := BuildDataset(tr, opts)
	if err != nil {
		return fmt.Errorf("deepbat: fine-tune dataset: %w", err)
	}
	ft := surrogate.FineTuneConfig()
	ft.SLO = s.Opts.SLO
	if _, err := s.Model.FineTune(ds, ft); err != nil {
		return fmt.Errorf("deepbat: fine-tune: %w", err)
	}
	// Recalibrate the robustness margin on the adaptation data — the model
	// changed and so did the workload distribution.
	g := s.Model.UnderpredictionQuantile(ds, s.Opts.Pct, 0.9)
	if g > 0.5 {
		g = 0.5
	}
	s.Model.GammaHint = g
	s.SetGamma(g)
	return nil
}

// Decide runs one optimization over the recent interarrival window.
func (s *System) Decide(window []float64) (Decision, error) {
	return s.Optimizer.Decide(window)
}

// SetGamma installs the robustness penalty factor that tightens the SLO.
func (s *System) SetGamma(gamma float64) { s.Optimizer.Gamma = gamma }

// CalibrateGamma measures the paper's robustness penalty factor
// (Section III-D): it predicts the constrained tail percentile for a probe
// configuration on the given interarrival window, simulates the same window
// as ground truth, installs gamma = |P_hat - P| / P (clamped to [0, 0.5])
// on the optimizer, and returns it. Use it after fine-tuning, or as a fast
// reaction to an entirely unseen arrival process.
func (s *System) CalibrateGamma(window []float64, probe Config) (float64, error) {
	l := s.Model.Cfg.SeqLen
	if len(window) < l {
		return 0, errors.New("deepbat: window shorter than the model input")
	}
	pred := s.Model.Predict(window[len(window)-l:], probe)
	tail, ok := pred.Percentile(s.Model.Cfg, s.Opts.Pct)
	if !ok {
		return 0, fmt.Errorf("deepbat: model does not predict P%g", s.Opts.Pct)
	}
	truth, err := s.Simulator.Evaluate(window, probe, []float64{s.Opts.Pct})
	if err != nil {
		return 0, err
	}
	gamma := surrogate.PenaltyGamma(tail, truth.Percentiles[0])
	if gamma > 0.5 {
		gamma = 0.5
	}
	// Raise-only: a single-window probe is a fast alarm for unseen arrival
	// processes, not grounds to shrink a margin calibrated on more data.
	if gamma < s.Optimizer.Gamma {
		gamma = s.Optimizer.Gamma
	}
	s.SetGamma(gamma)
	return gamma, nil
}

// WithSLO returns a system targeting a different SLO; the trained model is
// shared, only the optimizer and baselines are rebuilt.
func (s *System) WithSLO(slo float64) *System {
	opts := s.Opts
	opts.SLO = slo
	return NewSystem(s.Model, opts)
}

// Decider returns the DeepBAT controller for closed-loop replay.
func (s *System) Decider() Decider { return core.NewDeepBATDecider(s.Optimizer) }

// BATCHBaseline returns the analytical baseline controller configured
// identically (same grid, SLO, profile, pricing).
func (s *System) BATCHBaseline() Decider {
	pl := batchopt.NewPipeline(s.Opts.Profile, s.Opts.Pricing, s.Opts.Grid, s.Opts.SLO)
	pl.Pct = s.Opts.Pct
	return core.NewBATCHDecider(pl)
}

// Oracle returns the ground-truth controller (perfect foresight).
func (s *System) Oracle() Decider {
	return core.NewOracleDecider(s.Simulator, s.Opts.Grid, s.Opts.SLO)
}

// Static returns a fixed-configuration controller.
func (s *System) Static(cfg Config) Decider { return core.StaticDecider{Cfg: cfg} }

// Replay drives a timestamp trace through the batching system with the given
// controller and periodic reconfiguration.
func (s *System) Replay(arrivals []float64, dec Decider, opts ReplayOptions) (*ReplayResult, error) {
	return core.NewEngine(s.Simulator).Replay(arrivals, dec, opts)
}

// NewFramework assembles the event-driven Fig. 2 pipeline wired to this
// system's optimizer: the framework reconfigures itself from the parser's
// window every DecidePeriodS seconds.
func (s *System) NewFramework(initial Config) (*Framework, error) {
	if s.Model == nil {
		return nil, errors.New("deepbat: system has no model")
	}
	fw, err := core.NewFramework(
		core.SimLambda{Profile: s.Opts.Profile, Pricing: s.Opts.Pricing},
		s.Model.Cfg.SeqLen, initial)
	if err != nil {
		return nil, err
	}
	fw.Reconfigure = func(window []float64) (Config, error) {
		d, err := s.Optimizer.Decide(window)
		if err != nil {
			return Config{}, err
		}
		return d.Config, nil
	}
	return fw, nil
}

// SaveModel persists the trained surrogate to a file.
func (s *System) SaveModel(path string) error { return s.Model.SaveFile(path) }

// LoadSystem restores a System from a saved model file.
func LoadSystem(path string, opts Options) (*System, error) {
	m, err := surrogate.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return NewSystem(m, opts), nil
}
